"""A from-scratch, well-formedness-checking XML parser.

WmXML's substrate must not depend on third-party XML libraries, so this
module implements a single-pass *scanner* over the input string: markup
boundaries are located with ``str.find``/compiled-regex tokenisation
(instead of a char-at-a-time cursor) and elements are managed on an
explicit stack (instead of recursion), so arbitrarily deep documents
parse without recursion-limit tuning.  Supported syntax:

* the XML declaration (``<?xml version=... ?>``), recorded but unused,
* ``<!DOCTYPE ...>`` declarations, skipped (including an internal subset),
* elements with attributes in single or double quotes,
* character data with the five predefined entities plus decimal and
  hexadecimal character references,
* CDATA sections, comments and processing instructions,
* well-formedness checks: tag matching, single root, unique attributes.

Two correctness properties of the scanner beyond raw syntax:

* **End-of-line normalization** (XML 1.0 §2.11): ``\\r\\n`` and bare
  ``\\r`` in the input are normalised to ``\\n`` before any other
  processing (including inside CDATA), exactly as a conformant
  processor must.  Carriage returns that should *survive* a round-trip
  are therefore serialised as ``&#13;`` (see
  :mod:`repro.xmlmodel.serializer`) and come back as literal ``\\r``
  through the character-reference path, which normalization leaves
  alone.
* **Direct construction into the indexed tree**: the per-element
  child-tag index, the root's descendant (tag -> elements) index and
  the root's document-order ranks are populated *during* the parse —
  in exactly the pre-order the scanner walks — instead of being built
  lazily by the first query and invalidated stamp-by-stamp afterwards.
  A freshly parsed document answers indexed lookups with zero warm-up
  walks.

Namespace prefixes are treated as opaque parts of names — the paper's
system operates on data-centric XML where no namespace processing is
required.

Errors are reported as :class:`~repro.xmlmodel.errors.XMLSyntaxError`
with 1-based line/column positions (computed on the EOL-normalised
text).

Batch parsing goes through :func:`parse_many`, which reuses one parser
for the whole batch and can optionally shard the batch over a process
pool (``processes=N``) — parsing is pure CPU work on immutable strings,
so it is the one pipeline stage that parallelises cleanly beyond the
GIL.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional

from repro.xmlmodel.errors import XMLNameError, XMLSyntaxError
from repro.xmlmodel.tree import (
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

#: The parser's Name production: ASCII letters/underscore/colon start,
#: then ASCII letters, digits, ``.``, ``-``, ``:``.  Deliberately the
#: same alphabet the recursive-descent engine accepted (a strict subset
#: of :func:`repro.xmlmodel.tree.validate_name`'s rule, so every name
#: the scanner admits also passes tree-level validation).
_NAME = r"[A-Za-z_:][A-Za-z0-9_.:\-]*"

_NAME_RE = re.compile(_NAME)
#: The dominant data-centric start-tag form: no attributes at all.
_SIMPLE_OPEN_RE = re.compile(rf"<({_NAME})(/?)>")
#: One attribute: mandatory leading whitespace, name, ``=``, quoted
#: value.  ``<`` is excluded from values (a well-formedness error the
#: slow path diagnoses precisely when this pattern refuses to match).
_ATTR_RE = re.compile(
    rf"[ \t\n]+({_NAME})[ \t\n]*=[ \t\n]*(\"[^<\"]*\"|'[^<']*')")
_END_TAG_RE = re.compile(rf"({_NAME})[ \t\n]*>")
#: A complete entity or character reference, terminated by ``;``.
_REFERENCE_RE = re.compile(
    rf"&(?:({_NAME})|#([0-9]+)|#[xX]([0-9a-fA-F]+));")
_DOCTYPE_DELIM_RE = re.compile(r"[\[\]>]")

_WHITESPACE = " \t\n"
_HEX_DIGITS = set("0123456789abcdefABCDEF")
_DIGITS = set("0123456789")
_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_:")


def _normalize_eol(text: str) -> str:
    """XML 1.0 §2.11 end-of-line handling: ``\\r\\n``/``\\r`` -> ``\\n``."""
    if "\r" in text:
        return text.replace("\r\n", "\n").replace("\r", "\n")
    return text


class _Scanner:
    """One parse: scanning state plus the indexes built along the way."""

    __slots__ = ("text", "pos", "length", "strip_whitespace",
                 "_ranking", "_by_tag")

    def __init__(self, text: str, strip_whitespace: bool) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)
        self.strip_whitespace = strip_whitespace
        # Indexes populated while the root subtree is constructed.
        self._ranking: dict = {}
        self._by_tag: dict[str, list[Element]] = {}

    # -- errors ------------------------------------------------------------

    def error(self, message: str, pos: Optional[int] = None) -> XMLSyntaxError:
        if pos is None:
            pos = self.pos
        line = self.text.count("\n", 0, pos) + 1
        column = pos - self.text.rfind("\n", 0, pos)
        return XMLSyntaxError(message, line, column)

    # -- document ------------------------------------------------------------

    def parse_document(self) -> Document:
        prolog = self._parse_misc(allow_doctype=True)
        if self.pos >= self.length or self.text[self.pos] != "<":
            raise self.error("expected root element")
        root = self._parse_tree()
        epilog = self._parse_misc(allow_doctype=False)
        self._skip_whitespace()
        if self.pos < self.length:
            raise self.error("content after document end")
        return Document(root, prolog=prolog, epilog=epilog)

    def _skip_whitespace(self) -> None:
        text, pos, length = self.text, self.pos, self.length
        while pos < length and text[pos] in _WHITESPACE:
            pos += 1
        self.pos = pos

    # -- prolog / epilog ----------------------------------------------------

    def _parse_misc(self, allow_doctype: bool) -> list[Node]:
        """Parse comments/PIs (and doctype) outside the root element."""
        nodes: list[Node] = []
        text = self.text
        while True:
            self._skip_whitespace()
            pos = self.pos
            if text.startswith("<?xml", pos) and pos == 0:
                self._skip_xml_declaration()
            elif text.startswith("<!--", pos):
                nodes.append(self._parse_comment())
            elif text.startswith("<!DOCTYPE", pos):
                if not allow_doctype:
                    raise self.error("DOCTYPE after root element")
                self._skip_doctype()
            elif text.startswith("<?", pos):
                nodes.append(self._parse_pi())
            else:
                return nodes

    def _skip_xml_declaration(self) -> None:
        end = self.text.find("?>", self.pos + 5)
        if end < 0:
            raise self.error("unterminated XML declaration",
                             pos=self.length)
        self.pos = end + 2

    def _skip_doctype(self) -> None:
        depth = 0
        scan = self.pos + len("<!DOCTYPE")
        while True:
            match = _DOCTYPE_DELIM_RE.search(self.text, scan)
            if match is None:
                raise self.error("unterminated DOCTYPE", pos=self.length)
            char = match.group()
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
                if depth < 0:
                    raise self.error("unbalanced ']' in DOCTYPE",
                                     pos=match.start())
            elif depth == 0:  # ">"
                self.pos = match.end()
                return
            scan = match.end()

    # -- the element scan loop ----------------------------------------------

    def _parse_tree(self) -> Element:
        """Scan the root element and its whole subtree in one loop."""
        text = self.text
        length = self.length
        find = text.find
        startswith = text.startswith
        simple_open = _SIMPLE_OPEN_RE.match
        blank_element = Element._blank
        blank_text = Text._blank
        strip_whitespace = self.strip_whitespace
        ranking = self._ranking
        by_tag = self._by_tag
        rank = 0

        root_start = self.pos
        root, closed, pos = self._parse_open_tag(root_start)
        by_tag[root.tag] = [root]
        ranking[id(root)] = rank
        rank += 1
        for name in root.attributes:
            ranking[(id(root), name)] = rank
            rank += 1
        self.pos = pos
        if closed:
            self._seal(root)
            return root

        #: (element, start offset of its ``<``, text parts, ``</tag>``)
        stack: list[tuple[Element, int, list[str], str]] = []
        current = root
        current_start = root_start
        parts: list[str] = []
        end_literal = f"</{root.tag}>"

        def flush_text() -> None:
            nonlocal rank
            value = "".join(parts)
            del parts[:]
            if strip_whitespace and not value.strip():
                return
            node = blank_text(value)
            node.parent = current
            current.children.append(node)
            ranking[id(node)] = rank
            rank += 1

        while True:
            angle = find("<", pos)
            if angle < 0:
                raise self.error(f"unterminated element <{current.tag}>",
                                 pos=length)
            if angle > pos:
                chunk = text[pos:angle]
                bad = chunk.find("]]>")
                if bad >= 0:
                    raise self.error("']]>' not allowed in character data",
                                     pos=pos + bad)
                if "&" in chunk:
                    chunk = self._expand_references(chunk, pos)
                parts.append(chunk)
            after = text[angle + 1:angle + 2]
            if after == "/":
                # End tag: close the current element.  Fast path: the
                # exact ``</tag>`` literal in one startswith.
                if parts:
                    flush_text()
                if startswith(end_literal, angle):
                    pos = angle + len(end_literal)
                else:
                    match = _END_TAG_RE.match(text, angle + 2)
                    if match is None:
                        self._raise_end_tag_error(angle)
                    if match.group(1) != current.tag:
                        raise self.error(
                            f"mismatched end tag: expected </{current.tag}>, "
                            f"got </{match.group(1)}>", pos=current_start)
                    pos = match.end()
                current._index_stamp = current._children_stamp
                if not stack:
                    self.pos = pos
                    return root
                current, current_start, parts, end_literal = stack.pop()
            elif after == "!":
                if startswith("<!--", angle):
                    if parts:
                        flush_text()
                    self.pos = angle
                    node = self._parse_comment()
                    pos = self.pos
                    node.parent = current
                    current.children.append(node)
                    ranking[id(node)] = rank
                    rank += 1
                elif startswith("<![CDATA[", angle):
                    end = find("]]>", angle + 9)
                    if end < 0:
                        raise self.error("unterminated CDATA section",
                                         pos=length)
                    parts.append(text[angle + 9:end])
                    pos = end + 3
                else:
                    raise self.error("expected a name", pos=angle + 1)
            elif after == "?":
                if parts:
                    flush_text()
                self.pos = angle
                node = self._parse_pi()
                pos = self.pos
                node.parent = current
                current.children.append(node)
                ranking[id(node)] = rank
                rank += 1
            else:
                # Child element.  The attribute-free form — the dominant
                # shape in data-centric documents — is recognised with a
                # single regex match, inline.
                if parts:
                    flush_text()
                match = simple_open(text, angle)
                if match is not None:
                    tag = match.group(1)
                    if len(tag) == 3 and tag.lower() == "xml":
                        raise XMLNameError("the name 'xml' is reserved")
                    child = blank_element(tag)
                    closed = match.group(2) == "/"
                    pos = match.end()
                else:
                    child, closed, pos = self._parse_open_tag(angle)
                    tag = child.tag
                child.parent = current
                current.children.append(child)
                child_list = current._child_index.get(tag)
                if child_list is None:
                    current._child_index[tag] = [child]
                else:
                    child_list.append(child)
                tag_list = by_tag.get(tag)
                if tag_list is None:
                    by_tag[tag] = [child]
                else:
                    tag_list.append(child)
                ranking[id(child)] = rank
                rank += 1
                if child.attributes:
                    for name in child.attributes:
                        ranking[(id(child), name)] = rank
                        rank += 1
                if closed:
                    child._index_stamp = 0
                else:
                    stack.append((current, current_start, parts,
                                  end_literal))
                    current, current_start, parts = child, angle, []
                    end_literal = f"</{tag}>"

    @staticmethod
    def _seal(element: Element) -> None:
        """Mark the directly-built child-tag index as current.

        Construction bypassed :meth:`Element.append`, so the stamps are
        still at their initial value; aligning ``_index_stamp`` with
        ``_children_stamp`` makes the index the parser maintained the
        one :meth:`Element._tag_index` serves — until the first real
        mutation bumps the stamp and rebuilds it, exactly as before.
        """
        element._index_stamp = element._children_stamp

    def _finish_root_indexes(self, root: Element) -> None:
        """Install the parse-order caches on the freshly built root."""
        root._order_cache = (root._subtree_stamp, self._ranking)
        root._descendant_cache = (root._subtree_stamp, self._by_tag)

    # -- tags ------------------------------------------------------------

    def _parse_open_tag(self, start: int) -> tuple[Element, bool, int]:
        """Parse ``<tag attr="v" ...>`` at ``start``.

        Returns ``(element, closed, position after the tag)``.
        """
        text = self.text
        match = _NAME_RE.match(text, start + 1)
        if match is None:
            raise self.error("expected a name", pos=start + 1)
        tag = match.group()
        if len(tag) == 3 and tag.lower() == "xml":
            raise XMLNameError("the name 'xml' is reserved")
        element = Element._blank(tag)
        pos = match.end()
        next_char = text[pos:pos + 1]
        if next_char == ">":
            return element, False, pos + 1
        if next_char == "/" and text[pos + 1:pos + 2] == ">":
            return element, True, pos + 2
        attributes = element.attributes
        scan = pos
        while True:
            attr = _ATTR_RE.match(text, scan)
            if attr is None:
                break
            name = attr.group(1)
            if name in attributes:
                raise self.error(f"duplicate attribute {name!r}",
                                 pos=attr.start(1))
            if len(name) == 3 and name.lower() == "xml":
                raise XMLNameError("the name 'xml' is reserved")
            raw = attr.group(2)[1:-1]
            if "&" in raw:
                raw = self._expand_references(raw, attr.start(1),
                                              error_at_base=True)
            attributes[name] = raw
            scan = attr.end()
        tail = scan
        while tail < self.length and text[tail] in _WHITESPACE:
            tail += 1
        closer = text[tail:tail + 1]
        if closer == ">":
            return element, False, tail + 1
        if closer == "/" and text[tail + 1:tail + 2] == ">":
            return element, True, tail + 2
        self._raise_attribute_error(pos)
        raise AssertionError("unreachable")  # pragma: no cover

    def _raise_end_tag_error(self, angle: int) -> None:
        """Diagnose a malformed end tag at ``angle`` (points at ``<``)."""
        match = _NAME_RE.match(self.text, angle + 2)
        if match is None:
            raise self.error("expected a name", pos=angle + 2)
        scan = match.end()
        while scan < self.length and self.text[scan] in _WHITESPACE:
            scan += 1
        raise self.error("expected '>'", pos=scan)

    def _raise_attribute_error(self, start: int) -> None:
        """Re-walk a start-tag tail the fast path refused, precisely.

        ``start`` points just past the tag name.  The fast attribute
        regex only fails on ill-formed input; this slow walk mirrors the
        recursive-descent engine's checks to raise the same error at
        the same position.
        """
        text, length = self.text, self.length
        pos = start
        seen: set[str] = set()
        while True:
            had_space = text[pos:pos + 1] in _WHITESPACE and pos < length
            while pos < length and text[pos] in _WHITESPACE:
                pos += 1
            char = text[pos:pos + 1]
            if char in ("", ">"):
                break
            if char == "/":
                if text[pos + 1:pos + 2] == ">":
                    break
                raise self.error("expected '>'", pos=pos)
            if not had_space:
                raise self.error("expected whitespace before attribute",
                                 pos=pos)
            name_pos = pos
            name_match = _NAME_RE.match(text, pos)
            if name_match is None:
                raise self.error("expected a name", pos=pos)
            name = name_match.group()
            pos = name_match.end()
            while pos < length and text[pos] in _WHITESPACE:
                pos += 1
            if text[pos:pos + 1] != "=":
                raise self.error("expected '='", pos=pos)
            pos += 1
            while pos < length and text[pos] in _WHITESPACE:
                pos += 1
            quote = text[pos:pos + 1]
            if quote not in ("'", '"'):
                raise self.error("attribute value must be quoted", pos=pos)
            end = text.find(quote, pos + 1)
            if end < 0:
                raise self.error("unterminated attribute value", pos=length)
            raw = text[pos + 1:end]
            if "<" in raw:
                raise self.error("'<' not allowed in attribute value",
                                 pos=name_pos)
            if name in seen:
                raise self.error(f"duplicate attribute {name!r}",
                                 pos=name_pos)
            self._expand_references(raw, name_pos, error_at_base=True)
            seen.add(name)
            pos = end + 1
        raise self.error("expected '>'", pos=pos)

    # -- comments / PIs ------------------------------------------------------

    def _parse_comment(self) -> Comment:
        end = self.text.find("-->", self.pos + 4)
        if end < 0:
            raise self.error("unterminated comment", pos=self.length)
        content = self.text[self.pos + 4:end]
        if "--" in content:
            raise self.error("'--' not allowed inside a comment")
        self.pos = end + 3
        return Comment(content)

    def _parse_pi(self) -> ProcessingInstruction:
        match = _NAME_RE.match(self.text, self.pos + 2)
        if match is None:
            raise self.error("expected a name", pos=self.pos + 2)
        target = match.group()
        if target.lower() == "xml":
            raise self.error(
                "processing instruction target 'xml' is reserved")
        end = self.text.find("?>", match.end())
        if end < 0:
            raise self.error("unterminated processing instruction",
                             pos=self.length)
        content = self.text[match.end():end]
        self.pos = end + 2
        return ProcessingInstruction(target, content.lstrip())

    # -- references ------------------------------------------------------------

    def _expand_references(self, raw: str, base: int,
                           error_at_base: bool = False) -> str:
        """Expand entity/char references in ``raw`` (a slice at ``base``).

        ``error_at_base`` reports every error at ``base`` itself — the
        attribute-value convention, matching the previous engine which
        anchored reference errors at the attribute name.
        """
        parts: list[str] = []
        pos = 0
        find = raw.find
        while True:
            amp = find("&", pos)
            if amp < 0:
                parts.append(raw[pos:])
                return "".join(parts)
            parts.append(raw[pos:amp])
            where = base if error_at_base else base + amp
            match = _REFERENCE_RE.match(raw, amp)
            if match is None:
                self._raise_reference_error(raw, amp, where)
            name, decimal, hexadecimal = match.group(1, 2, 3)
            if name is not None:
                try:
                    parts.append(_PREDEFINED_ENTITIES[name])
                except KeyError:
                    raise self.error(f"unknown entity &{name};",
                                     pos=where) from None
            else:
                code = (int(decimal) if decimal is not None
                        else int(hexadecimal, 16))
                if code == 0 or code > 0x10FFFF:
                    raise self.error("character reference out of range",
                                     pos=where)
                parts.append(chr(code))
            pos = match.end()

    def _raise_reference_error(self, raw: str, amp: int, where: int) -> None:
        """Say *why* a ``&...`` sequence is not a valid reference."""
        after = raw[amp + 1:amp + 2]
        if after == "#":
            scan = amp + 2
            digits = _DIGITS
            if raw[scan:scan + 1] in ("x", "X"):
                scan += 1
                digits = _HEX_DIGITS
            begin = scan
            while scan < len(raw) and raw[scan] in digits:
                scan += 1
            if scan == begin:
                raise self.error("empty character reference", pos=where)
            raise self.error("expected ';'", pos=where)
        if after and after in _NAME_START:
            name_match = _NAME_RE.match(raw, amp + 1)
            assert name_match is not None
            if raw[name_match.end():name_match.end() + 1] != ";":
                raise self.error("expected ';'", pos=where)
            raise self.error(
                f"unknown entity &{name_match.group()};", pos=where)
        raise self.error("expected a name", pos=where)


class XMLParser:
    """Scanner-based XML parser.

    Parameters
    ----------
    strip_whitespace:
        When true, text nodes consisting purely of whitespace are dropped.
        Data-centric pipelines (everything in this reproduction) set this
        to keep trees free of indentation noise; the default preserves the
        input exactly so serialisation round-trips are lossless.
    """

    def __init__(self, strip_whitespace: bool = False) -> None:
        self.strip_whitespace = strip_whitespace

    def parse(self, text: str) -> Document:
        """Parse ``text`` into a :class:`Document`."""
        if not isinstance(text, str):
            raise TypeError("parse() expects str input")
        scanner = _Scanner(_normalize_eol(text), self.strip_whitespace)
        document = scanner.parse_document()
        scanner._finish_root_indexes(document.root)
        return document

    def parse_many(self, texts: Iterable[str],
                   processes: Optional[int] = None) -> list[Document]:
        """Parse a batch of XML strings; see :func:`parse_many`."""
        return parse_many(texts, strip_whitespace=self.strip_whitespace,
                          processes=processes)


def parse(text: str, strip_whitespace: bool = False) -> Document:
    """Parse an XML string into a :class:`Document` (module-level shortcut)."""
    return XMLParser(strip_whitespace=strip_whitespace).parse(text)


def _parse_chunk(payload: tuple[tuple[str, ...], bool]) -> list[Document]:
    """Top-level chunk worker for :func:`parse_many`'s process pool."""
    texts, strip_whitespace = payload
    parser = XMLParser(strip_whitespace=strip_whitespace)
    return [parser.parse(text) for text in texts]


def parse_many(texts: Iterable[str], strip_whitespace: bool = False,
               processes: Optional[int] = None) -> list[Document]:
    """Parse many XML strings, optionally sharded over a process pool.

    With ``processes`` unset (or < 2) the batch is parsed serially by a
    single reused parser.  With ``processes=N`` the batch is cut into
    contiguous chunks and sharded over the *persistent* worker pool
    (:mod:`repro.parallel`, shared with the facade's batch engine) —
    parsing is pure CPU work, so it scales past the GIL; the parsed
    :class:`Document` trees are pickled back to the caller.  Results
    are returned in input order either way, and a syntax error in any
    document propagates as the same :class:`XMLSyntaxError` the serial
    path would raise.

    One sharding caveat: pickle walks the parent/child links
    recursively, so a pathologically deep tree (thousands of nested
    elements) can exceed the interpreter's recursion limit on the trip
    back from a worker even though the scanner itself parses it fine.
    That surfaces as a ``RecursionError`` in the parent (a dead worker
    as ``BrokenProcessPool``), and the batch transparently falls back
    to the serial path — correctness is preserved; only the
    parallelism is lost.
    """
    batch = list(texts)
    if processes is not None and processes > 1 and len(batch) > 1:
        from repro import parallel

        payloads = [
            (tuple(chunk), strip_whitespace)
            for chunk in parallel.chunk_evenly(
                batch, processes * parallel.CHUNKS_PER_WORKER)]
        try:
            chunks = parallel.map_sharded(processes, _parse_chunk, payloads)
            return [document for chunk in chunks for document in chunk]
        except (RecursionError, parallel.BrokenProcessPool):
            pass  # tree too deep to pickle — parse serially below
    parser = XMLParser(strip_whitespace=strip_whitespace)
    return [parser.parse(text) for text in batch]


def parse_file(path: str, strip_whitespace: bool = False) -> Document:
    """Parse the XML file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read(), strip_whitespace=strip_whitespace)
