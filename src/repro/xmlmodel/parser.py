"""A from-scratch, well-formedness-checking XML parser.

WmXML's substrate must not depend on third-party XML libraries, so this
module implements a recursive-descent parser over a position-tracking
cursor.  Supported syntax:

* the XML declaration (``<?xml version=... ?>``), recorded but unused,
* ``<!DOCTYPE ...>`` declarations, skipped (including an internal subset),
* elements with attributes in single or double quotes,
* character data with the five predefined entities plus decimal and
  hexadecimal character references,
* CDATA sections, comments and processing instructions,
* well-formedness checks: tag matching, single root, unique attributes.

Namespace prefixes are treated as opaque parts of names — the paper's
system operates on data-centric XML where no namespace processing is
required.

Errors are reported as :class:`~repro.xmlmodel.errors.XMLSyntaxError`
with 1-based line/column positions.
"""

from __future__ import annotations

from typing import Optional

from repro.xmlmodel.errors import XMLSyntaxError
from repro.xmlmodel.tree import (
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START = set(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Cursor:
    """Character cursor with line/column tracking over the input string."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= self.length:
            return ""
        return self.text[index]

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def location(self, pos: Optional[int] = None) -> tuple[int, int]:
        """1-based (line, column) of ``pos`` (default: current position)."""
        if pos is None:
            pos = self.pos
        line = self.text.count("\n", 0, pos) + 1
        last_newline = self.text.rfind("\n", 0, pos)
        column = pos - last_newline
        return line, column

    def error(self, message: str, pos: Optional[int] = None) -> XMLSyntaxError:
        line, column = self.location(pos)
        return XMLSyntaxError(message, line, column)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        if self.at_end() or self.text[self.pos] not in _NAME_START:
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.length and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start:self.pos]

    def expect(self, literal: str) -> None:
        if not self.startswith(literal):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def read_until(self, terminator: str, what: str) -> str:
        """Consume up to (and including) ``terminator``; return the content."""
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        content = self.text[self.pos:end]
        self.pos = end + len(terminator)
        return content


class XMLParser:
    """Recursive-descent XML parser.

    Parameters
    ----------
    strip_whitespace:
        When true, text nodes consisting purely of whitespace are dropped.
        Data-centric pipelines (everything in this reproduction) set this
        to keep trees free of indentation noise; the default preserves the
        input exactly so serialisation round-trips are lossless.
    """

    def __init__(self, strip_whitespace: bool = False) -> None:
        self.strip_whitespace = strip_whitespace

    # -- public API ------------------------------------------------------------

    def parse(self, text: str) -> Document:
        """Parse ``text`` into a :class:`Document`."""
        if not isinstance(text, str):
            raise TypeError("parse() expects str input")
        cursor = _Cursor(text)
        prolog = self._parse_misc(cursor, allow_doctype=True)
        cursor.skip_whitespace()
        if cursor.at_end() or cursor.peek() != "<":
            raise cursor.error("expected root element")
        root = self._parse_element(cursor)
        epilog = self._parse_misc(cursor, allow_doctype=False)
        cursor.skip_whitespace()
        if not cursor.at_end():
            raise cursor.error("content after document end")
        return Document(root, prolog=prolog, epilog=epilog)

    # -- prolog / epilog ----------------------------------------------------------

    def _parse_misc(self, cursor: _Cursor, allow_doctype: bool) -> list[Node]:
        """Parse comments/PIs (and doctype) outside the root element."""
        nodes: list[Node] = []
        while True:
            cursor.skip_whitespace()
            if cursor.startswith("<?xml") and cursor.pos == 0:
                self._skip_xml_declaration(cursor)
            elif cursor.startswith("<!--"):
                nodes.append(self._parse_comment(cursor))
            elif cursor.startswith("<!DOCTYPE"):
                if not allow_doctype:
                    raise cursor.error("DOCTYPE after root element")
                self._skip_doctype(cursor)
            elif cursor.startswith("<?"):
                nodes.append(self._parse_pi(cursor))
            else:
                return nodes

    def _skip_xml_declaration(self, cursor: _Cursor) -> None:
        cursor.expect("<?xml")
        cursor.read_until("?>", "XML declaration")

    def _skip_doctype(self, cursor: _Cursor) -> None:
        cursor.expect("<!DOCTYPE")
        depth = 0
        while True:
            if cursor.at_end():
                raise cursor.error("unterminated DOCTYPE")
            char = cursor.peek()
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
                if depth < 0:
                    raise cursor.error("unbalanced ']' in DOCTYPE")
            elif char == ">" and depth == 0:
                cursor.advance()
                return
            cursor.advance()

    # -- node parsers ------------------------------------------------------------

    def _parse_element(self, cursor: _Cursor) -> Element:
        start = cursor.pos
        cursor.expect("<")
        tag = cursor.read_name()
        element = Element(tag)
        self._parse_attributes(cursor, element)
        if cursor.startswith("/>"):
            cursor.advance(2)
            return element
        cursor.expect(">")
        self._parse_content(cursor, element)
        cursor.expect("</")
        end_tag = cursor.read_name()
        if end_tag != tag:
            raise cursor.error(
                f"mismatched end tag: expected </{tag}>, got </{end_tag}>",
                pos=start,
            )
        cursor.skip_whitespace()
        cursor.expect(">")
        return element

    def _parse_attributes(self, cursor: _Cursor, element: Element) -> None:
        while True:
            had_space = cursor.peek() in " \t\r\n"
            cursor.skip_whitespace()
            char = cursor.peek()
            if char in ("", ">", "/"):
                return
            if not had_space:
                raise cursor.error("expected whitespace before attribute")
            name_pos = cursor.pos
            name = cursor.read_name()
            cursor.skip_whitespace()
            cursor.expect("=")
            cursor.skip_whitespace()
            quote = cursor.peek()
            if quote not in ("'", '"'):
                raise cursor.error("attribute value must be quoted")
            cursor.advance()
            raw = cursor.read_until(quote, "attribute value")
            if "<" in raw:
                raise cursor.error("'<' not allowed in attribute value", pos=name_pos)
            if name in element.attributes:
                raise cursor.error(f"duplicate attribute {name!r}", pos=name_pos)
            element.set_attribute(name, self._expand_entities(raw, cursor, name_pos))

    def _parse_content(self, cursor: _Cursor, element: Element) -> None:
        text_parts: list[str] = []
        text_start = cursor.pos

        def flush_text() -> None:
            if not text_parts:
                return
            value = "".join(text_parts)
            text_parts.clear()
            if self.strip_whitespace and not value.strip():
                return
            element.append(Text(value))

        while True:
            if cursor.at_end():
                raise cursor.error(f"unterminated element <{element.tag}>")
            char = cursor.peek()
            if char == "<":
                if cursor.startswith("</"):
                    flush_text()
                    return
                if cursor.startswith("<!--"):
                    flush_text()
                    element.append(self._parse_comment(cursor))
                elif cursor.startswith("<![CDATA["):
                    cursor.advance(len("<![CDATA["))
                    text_parts.append(cursor.read_until("]]>", "CDATA section"))
                elif cursor.startswith("<?"):
                    flush_text()
                    element.append(self._parse_pi(cursor))
                else:
                    flush_text()
                    element.append(self._parse_element(cursor))
            elif char == "&":
                text_parts.append(self._parse_reference(cursor))
            else:
                text_start = cursor.pos
                while (
                    cursor.pos < cursor.length
                    and cursor.text[cursor.pos] not in "<&"
                ):
                    cursor.pos += 1
                chunk = cursor.text[text_start:cursor.pos]
                if "]]>" in chunk:
                    raise cursor.error(
                        "']]>' not allowed in character data",
                        pos=text_start + chunk.index("]]>"),
                    )
                text_parts.append(chunk)

    def _parse_comment(self, cursor: _Cursor) -> Comment:
        cursor.expect("<!--")
        content = cursor.read_until("-->", "comment")
        if "--" in content:
            raise cursor.error("'--' not allowed inside a comment")
        return Comment(content)

    def _parse_pi(self, cursor: _Cursor) -> ProcessingInstruction:
        cursor.expect("<?")
        target = cursor.read_name()
        if target.lower() == "xml":
            raise cursor.error("processing instruction target 'xml' is reserved")
        content = cursor.read_until("?>", "processing instruction")
        return ProcessingInstruction(target, content.lstrip())

    # -- references ------------------------------------------------------------

    def _parse_reference(self, cursor: _Cursor) -> str:
        start = cursor.pos
        cursor.expect("&")
        if cursor.peek() == "#":
            cursor.advance()
            return self._parse_char_reference(cursor, start)
        name = cursor.read_name()
        cursor.expect(";")
        try:
            return _PREDEFINED_ENTITIES[name]
        except KeyError:
            raise cursor.error(f"unknown entity &{name};", pos=start) from None

    def _parse_char_reference(self, cursor: _Cursor, start: int) -> str:
        if cursor.peek() in ("x", "X"):
            cursor.advance()
            digits = self._read_digits(cursor, "0123456789abcdefABCDEF", start)
            code = int(digits, 16)
        else:
            digits = self._read_digits(cursor, "0123456789", start)
            code = int(digits, 10)
        cursor.expect(";")
        if code == 0 or code > 0x10FFFF:
            raise cursor.error("character reference out of range", pos=start)
        return chr(code)

    def _read_digits(self, cursor: _Cursor, alphabet: str, start: int) -> str:
        begin = cursor.pos
        while cursor.peek() and cursor.peek() in alphabet:
            cursor.advance()
        if cursor.pos == begin:
            raise cursor.error("empty character reference", pos=start)
        return cursor.text[begin:cursor.pos]

    def _expand_entities(self, raw: str, cursor: _Cursor, pos: int) -> str:
        """Expand entity/char references inside an attribute value."""
        if "&" not in raw:
            return raw
        sub = _Cursor(raw)
        parts: list[str] = []
        while not sub.at_end():
            if sub.peek() == "&":
                try:
                    parts.append(self._parse_reference(sub))
                except XMLSyntaxError as exc:
                    raise cursor.error(exc.message, pos=pos) from None
            else:
                start = sub.pos
                while not sub.at_end() and sub.peek() != "&":
                    sub.advance()
                parts.append(sub.text[start:sub.pos])
        return "".join(parts)


def parse(text: str, strip_whitespace: bool = False) -> Document:
    """Parse an XML string into a :class:`Document` (module-level shortcut)."""
    return XMLParser(strip_whitespace=strip_whitespace).parse(text)


def parse_file(path: str, strip_whitespace: bool = False) -> Document:
    """Parse the XML file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read(), strip_whitespace=strip_whitespace)
