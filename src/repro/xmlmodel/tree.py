"""In-memory XML tree model.

This is the data substrate for the whole WmXML reproduction: a small,
explicit DOM-like node hierarchy.  It deliberately supports the
data-centric subset of XML that the paper manipulates:

* elements with string attributes,
* text content (including mixed content),
* comments and processing instructions (kept so round-trips are lossless),
* a document node that owns exactly one root element.

Nodes are identity-hashable (so they can live in sets and dicts while the
tree is being rewritten) and offer *structural* equality through
:meth:`Node.equals` rather than ``__eq__``.

Nothing here knows about watermarking; higher layers (XPath, semantics,
core) build on these primitives.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Iterator, Optional

from repro.xmlmodel.errors import XMLNameError, XMLTreeError

#: XML 1.0 Name production, restricted to the ASCII-plus-common-unicode
#: subset this system emits.  Colons are allowed (treated as opaque name
#: characters; this stack does not implement namespace processing).
_NAME_RE = re.compile(r"^[A-Za-z_:][\w.\-:]*$", re.UNICODE)


def validate_name(name: str) -> str:
    """Return ``name`` if it is a legal XML tag/attribute name.

    Raises :class:`XMLNameError` otherwise.  Centralised so every
    constructor enforces the same rule.
    """
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise XMLNameError(f"illegal XML name: {name!r}")
    if name[:3].lower() == "xml" and name.lower().startswith("xml"):
        # XML reserves names beginning with 'xml' but real-world documents
        # use xml:lang etc.; we allow them and only reject the bare 'xml'.
        if name.lower() == "xml":
            raise XMLNameError("the name 'xml' is reserved")
    return name


class Node:
    """Common behaviour for every tree node.

    Subclasses: :class:`Element`, :class:`Text`, :class:`Comment`,
    :class:`ProcessingInstruction`.  A :class:`Document` is a separate
    root container, not a :class:`Node`.
    """

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional[Element] = None

    # -- identity & structure -------------------------------------------------

    def equals(self, other: "Node") -> bool:
        """Structural equality (same shape and content, not same object)."""
        raise NotImplementedError

    def copy(self) -> "Node":
        """Deep copy with ``parent`` cleared on the returned node."""
        raise NotImplementedError

    # -- navigation ------------------------------------------------------------

    def ancestors(self) -> Iterator["Element"]:
        """Yield ancestor elements from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        """Return the topmost node reachable through ``parent`` links."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def index_in_parent(self) -> int:
        """Position of this node among its parent's children.

        Raises :class:`XMLTreeError` when the node is detached.
        """
        if self.parent is None:
            raise XMLTreeError("node has no parent")
        for index, child in enumerate(self.parent.children):
            if child is self:
                return index
        raise XMLTreeError("node not found among parent's children")

    def detach(self) -> "Node":
        """Remove this node from its parent (no-op when detached)."""
        parent = self.parent
        if parent is not None:
            parent.children.remove(self)
            self.parent = None
            parent._mutated()
        return self

    # -- string value ------------------------------------------------------------

    def string_value(self) -> str:
        """The XPath string-value of the node."""
        raise NotImplementedError


class Text(Node):
    """A run of character data (includes CDATA content after parsing)."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        if not isinstance(value, str):
            raise TypeError(f"text value must be str, got {type(value).__name__}")
        self.value = value

    @classmethod
    def _blank(cls, value: str) -> "Text":
        """Fast construction for the parser: value already known to be str."""
        node = cls.__new__(cls)
        node.parent = None
        node.value = value
        return node

    def equals(self, other: Node) -> bool:
        return isinstance(other, Text) and other.value == self.value

    def copy(self) -> "Text":
        return Text(self.value)

    def string_value(self) -> str:
        return self.value

    def __repr__(self) -> str:
        preview = self.value if len(self.value) <= 30 else self.value[:27] + "..."
        return f"Text({preview!r})"


class Comment(Node):
    """An XML comment; preserved so serialisation round-trips are lossless."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        if "--" in value:
            raise XMLTreeError("comment content must not contain '--'")
        self.value = value

    def equals(self, other: Node) -> bool:
        return isinstance(other, Comment) and other.value == self.value

    def copy(self) -> "Comment":
        return Comment(self.value)

    def string_value(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"Comment({self.value!r})"


class ProcessingInstruction(Node):
    """A processing instruction ``<?target data?>``."""

    __slots__ = ("target", "data")

    def __init__(self, target: str, data: str = "") -> None:
        super().__init__()
        self.target = validate_name(target)
        self.data = data

    def equals(self, other: Node) -> bool:
        return (
            isinstance(other, ProcessingInstruction)
            and other.target == self.target
            and other.data == self.data
        )

    def copy(self) -> "ProcessingInstruction":
        return ProcessingInstruction(self.target, self.data)

    def string_value(self) -> str:
        return self.data

    def __repr__(self) -> str:
        return f"ProcessingInstruction({self.target!r}, {self.data!r})"


#: Shared empty result for tag lookups with no matches (never mutated).
_NO_ELEMENTS: list = []


class Element(Node):
    """An XML element: tag, ordered attributes, ordered children.

    Attributes are stored in a plain dict (insertion-ordered in Python 3.7+)
    mapping attribute name to string value.  Children may be any
    :class:`Node` subclass; mixed content is supported.
    """

    __slots__ = ("tag", "attributes", "children", "_children_stamp",
                 "_subtree_stamp", "_child_index", "_index_stamp",
                 "_order_cache", "_descendant_cache")

    def __init__(
        self,
        tag: str,
        attributes: Optional[dict[str, str]] = None,
        children: Optional[Iterable[Node]] = None,
        text: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.tag = validate_name(tag)
        # Index/cache bookkeeping must exist before any child is appended.
        self._children_stamp = 0
        self._subtree_stamp = 0
        self._child_index: Optional[dict[str, list["Element"]]] = None
        self._index_stamp = -1
        self._order_cache: Optional[tuple[int, dict]] = None
        self._descendant_cache: Optional[
            tuple[int, dict[str, list["Element"]]]] = None
        self.attributes: dict[str, str] = {}
        if attributes:
            for name, value in attributes.items():
                self.set_attribute(name, value)
        self.children: list[Node] = []
        if text is not None:
            self.append(Text(text))
        if children:
            for child in children:
                self.append(child)

    @classmethod
    def _blank(cls, tag: str) -> "Element":
        """Fast construction for the parser (tag already validated).

        The scanner's tokenizer admits only names that also satisfy
        :func:`validate_name` (and checks the reserved bare ``xml``
        itself), so this skips re-validation and the keyword plumbing
        of ``__init__`` while producing the identical initial state —
        except ``_child_index`` starts as a live empty dict the parser
        maintains directly.
        """
        element = cls.__new__(cls)
        element.parent = None
        element.tag = tag
        element.attributes = {}
        element.children = []
        element._children_stamp = 0
        element._subtree_stamp = 0
        element._child_index = {}
        element._index_stamp = -1
        element._order_cache = None
        element._descendant_cache = None
        return element

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Slot state with the ``id()``-keyed order cache dropped.

        Document-order ranks are keyed by object identity, which does
        not survive a trip through pickle (a ``parse_many`` process-pool
        worker's ids mean nothing to the receiving process), so the
        cache is shed here and lazily rebuilt on first use.  The
        child-tag and descendant indexes hold node *references* — pickle
        preserves those consistently — so they travel as-is.
        """
        state = {slot: getattr(self, slot) for slot in _ELEMENT_SLOTS}
        state["_order_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    # -- cache invalidation -----------------------------------------------------

    def _mutated(self) -> None:
        """Record a structural change under this element.

        Bumps the local children stamp (invalidating the child-tag
        index) and the subtree stamp of this element and every ancestor
        (invalidating cached document-order keys), so lazily built
        indexes are rebuilt on next use.
        """
        self._children_stamp += 1
        node: Optional[Element] = self
        while node is not None:
            node._subtree_stamp += 1
            node = node.parent

    # -- attribute access ------------------------------------------------------

    def set_attribute(self, name: str, value: str) -> None:
        """Set attribute ``name`` to ``value`` (stringified)."""
        validate_name(name)
        if not isinstance(value, str):
            value = str(value)
        if name not in self.attributes:
            # A new attribute occupies a document-order slot.
            self._mutated()
        self.attributes[name] = value

    def get_attribute(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the value of attribute ``name`` or ``default``."""
        return self.attributes.get(name, default)

    def remove_attribute(self, name: str) -> None:
        """Delete attribute ``name`` if present."""
        if name in self.attributes:
            del self.attributes[name]
            self._mutated()

    # -- child manipulation ------------------------------------------------------

    def append(self, node: Node) -> Node:
        """Attach ``node`` as the last child and return it."""
        if not isinstance(node, Node):
            raise TypeError(f"expected Node, got {type(node).__name__}")
        if node.parent is not None:
            raise XMLTreeError("node already has a parent; detach it first")
        node.parent = self
        self.children.append(node)
        self._mutated()
        return node

    def insert(self, index: int, node: Node) -> Node:
        """Attach ``node`` at ``index`` among the children and return it."""
        if node.parent is not None:
            raise XMLTreeError("node already has a parent; detach it first")
        node.parent = self
        self.children.insert(index, node)
        self._mutated()
        return node

    def remove(self, node: Node) -> Node:
        """Detach ``node`` (must be a direct child) and return it."""
        if node.parent is not self:
            raise XMLTreeError("node is not a child of this element")
        return node.detach()

    def replace(self, old: Node, new: Node) -> Node:
        """Swap direct child ``old`` for ``new`` in place."""
        index = old.index_in_parent()
        if old.parent is not self:
            raise XMLTreeError("node is not a child of this element")
        old.detach()
        return self.insert(index, new)

    def clear_children(self) -> None:
        """Detach all children."""
        for child in list(self.children):
            child.detach()

    # -- convenience constructors ---------------------------------------------

    def add_child(self, tag: str, text: Optional[str] = None,
                  attributes: Optional[dict[str, str]] = None) -> "Element":
        """Create, append and return a child element in one call."""
        return self.append(Element(tag, attributes=attributes, text=text))  # type: ignore[return-value]

    # -- text access ------------------------------------------------------------

    @property
    def text(self) -> str:
        """Concatenation of *direct* text children (not descendants)."""
        return "".join(
            child.value for child in self.children if isinstance(child, Text)
        )

    def set_text(self, value: str) -> None:
        """Replace all direct text children with a single text node.

        Element children are preserved in place; only text nodes change.
        This is the primitive the watermark embedder uses to perturb a
        leaf value.
        """
        kept = [c for c in self.children if not isinstance(c, Text)]
        for child in list(self.children):
            if isinstance(child, Text):
                child.detach()
        if kept:
            # Re-insert the new text node first to keep leaf semantics simple.
            self.insert(0, Text(value))
        else:
            self.append(Text(value))

    def string_value(self) -> str:
        """XPath string-value: every descendant text node, in order."""
        children = self.children
        # Fast path for the dominant leaf shape: a single text child.
        if len(children) == 1 and isinstance(children[0], Text):
            return children[0].value
        parts: list[str] = []
        stack: list[Node] = list(reversed(children))
        while stack:
            node = stack.pop()
            if isinstance(node, Text):
                parts.append(node.value)
            elif isinstance(node, Element):
                stack.extend(reversed(node.children))
        return "".join(parts)

    # -- traversal ------------------------------------------------------------

    def iter(self) -> Iterator[Node]:
        """Pre-order traversal of this element and all descendants."""
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Element):
                stack.extend(reversed(node.children))

    def iter_elements(self, tag: Optional[str] = None) -> Iterator["Element"]:
        """Pre-order traversal of descendant-or-self elements.

        With ``tag``, only elements with that tag are yielded.
        """
        for node in self.iter():
            if isinstance(node, Element) and (tag is None or node.tag == tag):
                yield node

    def _tag_index(self) -> dict[str, list["Element"]]:
        """tag -> direct element children, rebuilt lazily after mutation."""
        if self._child_index is None or self._index_stamp != self._children_stamp:
            index: dict[str, list[Element]] = {}
            for child in self.children:
                if isinstance(child, Element):
                    index.setdefault(child.tag, []).append(child)
            self._child_index = index
            self._index_stamp = self._children_stamp
        return self._child_index

    def children_by_tag(self, tag: str) -> list["Element"]:
        """Direct element children with ``tag`` (shared indexed list).

        The returned list is the index's own — callers must not mutate
        it.  Use :meth:`child_elements` for an owned copy.
        """
        return self._tag_index().get(tag, _NO_ELEMENTS)

    def child_elements(self, tag: Optional[str] = None) -> list["Element"]:
        """Direct element children, optionally filtered by ``tag``."""
        if tag is not None:
            return list(self._tag_index().get(tag, ()))
        return [
            child for child in self.children if isinstance(child, Element)
        ]

    def find(self, tag: str) -> Optional["Element"]:
        """First direct child element with ``tag``, or None."""
        matches = self._tag_index().get(tag)
        return matches[0] if matches else None

    def find_text(self, tag: str, default: Optional[str] = None) -> Optional[str]:
        """Text of the first direct child with ``tag``, or ``default``."""
        child = self.find(tag)
        if child is None:
            return default
        return child.text

    def descendants_by_tag(self, tag: str) -> list["Element"]:
        """Descendant-or-self elements with ``tag``, in document order.

        Served from a per-subtree cache (tag -> elements) rebuilt after
        any structural mutation below this element.  The returned list
        is the cache's own — callers must not mutate it.
        """
        cache = self._descendant_cache
        if cache is None or cache[0] != self._subtree_stamp:
            by_tag: dict[str, list[Element]] = {}
            for node in self.iter():
                if isinstance(node, Element):
                    by_tag.setdefault(node.tag, []).append(node)
            cache = (self._subtree_stamp, by_tag)
            self._descendant_cache = cache
        return cache[1].get(tag, _NO_ELEMENTS)

    def order_index(self) -> dict:
        """Document-order ranks for this subtree, cached until mutation.

        Maps ``id(node) -> rank`` for every node under (and including)
        this element, and ``(id(element), attribute_name) -> rank`` for
        attribute slots (attributes rank directly after their owner, as
        the XPath data model requires).  The dict is rebuilt lazily when
        the subtree stamp has moved — i.e. after any structural change.
        """
        cache = self._order_cache
        if cache is not None and cache[0] == self._subtree_stamp:
            return cache[1]
        ranking: dict = {}
        rank = 0
        for node in self.iter():
            ranking[id(node)] = rank
            rank += 1
            if isinstance(node, Element):
                for name in node.attributes:
                    ranking[(id(node), name)] = rank
                    rank += 1
        self._order_cache = (self._subtree_stamp, ranking)
        return ranking

    # -- structure --------------------------------------------------------------

    def is_leaf(self) -> bool:
        """True when the element has no element children."""
        return not any(isinstance(child, Element) for child in self.children)

    def path(self) -> str:
        """Absolute physical path like ``/db/book[2]/author[1]``.

        Positions are 1-based among same-tag siblings, matching XPath
        conventions.  Used by the Agrawal–Kiernan baseline (which is
        exactly why that baseline breaks under reorganization).
        """
        segments: list[str] = []
        node: Element = self
        while True:
            parent = node.parent
            if parent is None:
                segments.append(f"/{node.tag}")
                break
            siblings = [c for c in parent.children
                        if isinstance(c, Element) and c.tag == node.tag]
            position = siblings.index(node) + 1
            segments.append(f"/{node.tag}[{position}]")
            node = parent
        return "".join(reversed(segments))

    # -- equality & copying ------------------------------------------------------

    def equals(self, other: Node) -> bool:
        """Deep structural equality: tag, attributes, ordered children."""
        if not isinstance(other, Element):
            return False
        if other.tag != self.tag or other.attributes != self.attributes:
            return False
        mine = _significant_children(self)
        theirs = _significant_children(other)
        if len(mine) != len(theirs):
            return False
        return all(a.equals(b) for a, b in zip(mine, theirs))

    def copy(self) -> "Element":
        clone = Element(self.tag, attributes=dict(self.attributes))
        for child in self.children:
            clone.append(child.copy())
        return clone

    def __repr__(self) -> str:
        return f"Element({self.tag!r}, attrs={len(self.attributes)}, children={len(self.children)})"


#: Every slot an Element instance owns (its own plus Node's), resolved
#: once — __getstate__ runs per node when process-pool workers ship
#: parsed trees back, so the MRO walk must not happen per pickle.
_ELEMENT_SLOTS = tuple(
    slot
    for klass in Element.__mro__
    for slot in getattr(klass, "__slots__", ())
)


def _significant_children(element: Element) -> list[Node]:
    """Children that matter for structural equality.

    Two normalisations, both mandated by the XML/XPath data model:

    * adjacent text nodes are coalesced (markup cannot represent the
      boundary between them, so ``Text('a'), Text('b')`` and
      ``Text('ab')`` are the same content);
    * whitespace-only text runs between elements are formatting noise,
      so two documents differing only in indentation compare equal.
    """
    significant: list[Node] = []
    pending_text: list[str] = []

    def flush() -> None:
        if not pending_text:
            return
        value = "".join(pending_text)
        pending_text.clear()
        if value.strip():
            significant.append(Text(value))

    for child in element.children:
        if isinstance(child, Text):
            pending_text.append(child.value)
            continue
        flush()
        significant.append(child)
    flush()
    return significant


class Document:
    """A parsed XML document: optional prolog nodes plus one root element."""

    __slots__ = ("root", "prolog", "epilog")

    def __init__(
        self,
        root: Element,
        prolog: Optional[list[Node]] = None,
        epilog: Optional[list[Node]] = None,
    ) -> None:
        if not isinstance(root, Element):
            raise TypeError("document root must be an Element")
        self.root = root
        self.prolog: list[Node] = list(prolog or [])
        self.epilog: list[Node] = list(epilog or [])

    def iter(self) -> Iterator[Node]:
        """Pre-order traversal of every node under the root."""
        return self.root.iter()

    def iter_elements(self, tag: Optional[str] = None) -> Iterator[Element]:
        """All elements in document order, optionally filtered by tag."""
        return self.root.iter_elements(tag)

    def equals(self, other: "Document") -> bool:
        """Structural equality of the root elements (prolog ignored)."""
        return isinstance(other, Document) and self.root.equals(other.root)

    def copy(self) -> "Document":
        return Document(
            self.root.copy(),
            prolog=[node.copy() for node in self.prolog],
            epilog=[node.copy() for node in self.epilog],
        )

    def count_elements(self) -> int:
        """Total number of elements in the document."""
        return sum(1 for _ in self.iter_elements())

    def __repr__(self) -> str:
        return f"Document(root={self.root.tag!r}, elements={self.count_elements()})"


def document_order_key(document: Document) -> Callable[[Node], int]:
    """Return a function mapping nodes to their document-order rank.

    The XPath evaluator needs stable document order for node-set results;
    the rank dict is served from the root's cached :meth:`Element.order_index`
    (rebuilt only after structural mutation), keeping sorting O(n log n)
    without a fresh walk per sort.
    """
    order = document.root.order_index()
    total = len(order)

    def key(node: Node) -> int:
        return order.get(id(node), total)

    return key
