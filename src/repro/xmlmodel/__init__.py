"""From-scratch XML substrate: tree model, parser, serialisers, canonical form.

This package is the foundation of the WmXML reproduction — no third-party
XML library is used anywhere in the system.

Typical usage::

    from repro.xmlmodel import parse, serialize

    doc = parse("<db><book><title>DB Design</title></book></db>")
    title = doc.root.find("book").find_text("title")
    xml_text = serialize(doc)
"""

from repro.xmlmodel.canonical import (
    canonicalize,
    content_digest,
    semantically_equal,
)
from repro.xmlmodel.errors import (
    XMLError,
    XMLNameError,
    XMLSyntaxError,
    XMLTreeError,
)
from repro.xmlmodel.parser import XMLParser, parse, parse_file, parse_many
from repro.xmlmodel.serializer import pretty, serialize, write_file
from repro.xmlmodel.tree import (
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
    document_order_key,
    validate_name,
)

__all__ = [
    "Comment",
    "Document",
    "Element",
    "Node",
    "ProcessingInstruction",
    "Text",
    "XMLError",
    "XMLNameError",
    "XMLParser",
    "XMLSyntaxError",
    "XMLTreeError",
    "canonicalize",
    "content_digest",
    "document_order_key",
    "parse",
    "parse_file",
    "parse_many",
    "pretty",
    "semantically_equal",
    "serialize",
    "validate_name",
    "write_file",
]
