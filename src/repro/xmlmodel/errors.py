"""Exceptions raised by the XML data-model substrate.

The whole reproduction builds on a from-scratch XML stack; this module
holds the error hierarchy shared by the tree model, the parser and the
serializers so that callers can catch one family of exceptions.
"""

from __future__ import annotations

from repro.errors import WmXMLError


class XMLError(WmXMLError):
    """Base class for every error raised by :mod:`repro.xmlmodel`."""

    code = "xml-error"


class XMLSyntaxError(XMLError):
    """A document failed to parse.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position so tooling (and tests) can point at the exact character.
    """

    code = "xml-syntax"

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.message = message
        self.line = line
        self.column = column

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # string) against the three-argument constructor and explodes;
        # parse errors must survive the trip back from ``parse_many``'s
        # process-pool workers.
        return (XMLSyntaxError, (self.message, self.line, self.column))


class XMLTreeError(XMLError):
    """An illegal tree manipulation, e.g. attaching a node to two parents."""

    code = "xml-tree"


class XMLNameError(XMLError):
    """A tag or attribute name violates XML naming rules."""

    code = "xml-name"
