"""Document reorganisation: shred with one shape, rebuild with another.

This implements the transformation of Figure 1 in the paper (db1.xml ->
db2.xml, "without losing any information") and simultaneously powers the
re-organisation attack of §4C — the adversary's restructuring and the
benign migration are the same operation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.semantics.errors import RecordError
from repro.semantics.shape import DocumentShape
from repro.xmlmodel.tree import Document


@dataclass(frozen=True)
class ReorganizationResult:
    """Outcome of a reorganisation: the new document plus bookkeeping."""

    document: Document
    source_shape: DocumentShape
    target_shape: DocumentShape
    row_count: int
    dropped_fields: tuple[str, ...]

    @property
    def lossless(self) -> bool:
        return not self.dropped_fields


def reorganize(
    document: Document,
    source_shape: DocumentShape,
    target_shape: DocumentShape,
    allow_lossy: bool = False,
) -> ReorganizationResult:
    """Restructure ``document`` from ``source_shape`` to ``target_shape``.

    By default the reorganisation must be information-preserving: every
    field the source shape materialises must be placed somewhere in the
    target shape.  Pass ``allow_lossy=True`` to model the *destructive*
    variant of the attack (which, per the paper's claim, costs the
    adversary data usability).
    """
    dropped = tuple(source_shape.dropped_fields(target_shape))
    if dropped and not allow_lossy:
        raise RecordError(
            f"reorganisation {source_shape.name!r} -> {target_shape.name!r} "
            f"drops fields {list(dropped)}; pass allow_lossy=True to force")
    rows = source_shape.shred(document)
    rebuilt = target_shape.build(rows)
    return ReorganizationResult(
        document=rebuilt,
        source_shape=source_shape,
        target_shape=target_shape,
        row_count=len(rows),
        dropped_fields=dropped,
    )


def roundtrip(document: Document, via: DocumentShape,
              home: DocumentShape) -> Document:
    """Reorganise to ``via`` and back to ``home`` (test/demo helper)."""
    outbound = reorganize(document, home, via)
    inbound = reorganize(outbound.document, via, home)
    return inbound.document
