"""Compiling logical queries to concrete XPath for a document shape.

This module is the reproduction's query-rewriting engine (paper §2.2 and
Figure 2; the paper points to Yu & Popa's constraint-based rewriting and
notes its own rewriter "still needs human intervention" — here the human
supplies the target :class:`DocumentShape`, and compilation is fully
automatic).

Compilation walks the shape's level chain down to the target field's
placement, attaching each condition as a predicate at the level where
its field lives:

* a condition at or above the target's level becomes a predicate on its
  own step (``book[title='X']``, ``publisher[@name='mkp']``);
* a condition *below* the target's level becomes a path predicate on the
  target step (``author[book/text()='X']`` — exactly the paper's db2
  rewriting example);
* the final step selects the target placement (``/@name``, ``/year`` or
  ``/text()``).
"""

from __future__ import annotations

from repro.semantics.errors import RecordError
from repro.semantics.shape import ATTRIBUTE, LEAF, TEXT, DocumentShape, FieldPlacement
from repro.rewriting.logical import LogicalQuery, xpath_literal


def compile_logical(query: LogicalQuery, shape: DocumentShape) -> str:
    """Compile ``query`` to an XPath expression for documents of ``shape``."""
    target = shape.placement(query.target)
    conditions = [
        (shape.placement(field_name), value)
        for field_name, value in query.conditions
    ]
    levels = shape.nesting.levels

    # Predicates grouped by the level index of the step they attach to.
    predicates: dict[int, list[str]] = {}
    for placement, value in conditions:
        if placement.level_index <= target.level_index:
            attach_at = placement.level_index
            expr = _self_condition(placement, value)
        else:
            attach_at = target.level_index
            expr = _descendant_condition(placement, value, shape,
                                         target.level_index)
        predicates.setdefault(attach_at, []).append(expr)

    steps: list[str] = [shape.nesting.root]
    for index in range(target.level_index + 1):
        step = levels[index].tag
        for expr in predicates.get(index, ()):
            step += f"[{expr}]"
        steps.append(step)
    path = "/" + "/".join(steps)
    return path + _target_suffix(target)


def _self_condition(placement: FieldPlacement, value: str) -> str:
    """Predicate testing a field placed on the step's own level."""
    literal = xpath_literal(value)
    if placement.kind == ATTRIBUTE:
        return f"@{placement.name}={literal}"
    if placement.kind == LEAF:
        return f"{placement.name}={literal}"
    if placement.kind == TEXT:
        return f"text()={literal}"
    raise RecordError(f"unknown placement kind {placement.kind!r}")


def _descendant_condition(placement: FieldPlacement, value: str,
                          shape: DocumentShape, from_level: int) -> str:
    """Predicate testing a field placed below ``from_level``.

    Builds the relative tag path from the target's level down to the
    condition's level, ending in the placement access.
    """
    literal = xpath_literal(value)
    hops = [
        shape.nesting.levels[index].tag
        for index in range(from_level + 1, placement.level_index + 1)
    ]
    prefix = "/".join(hops)
    if placement.kind == ATTRIBUTE:
        return f"{prefix}/@{placement.name}={literal}"
    if placement.kind == LEAF:
        return f"{prefix}/{placement.name}={literal}"
    if placement.kind == TEXT:
        return f"{prefix}/text()={literal}"
    raise RecordError(f"unknown placement kind {placement.kind!r}")


def _target_suffix(placement: FieldPlacement) -> str:
    """Final selection step for the target placement."""
    if placement.kind == ATTRIBUTE:
        return f"/@{placement.name}"
    if placement.kind == LEAF:
        return f"/{placement.name}"
    if placement.kind == TEXT:
        return "/text()"
    raise RecordError(f"unknown placement kind {placement.kind!r}")


def rewrite(query: LogicalQuery, source: DocumentShape,
            target: DocumentShape) -> tuple[str, str]:
    """Compile the same logical query for two shapes.

    Returns ``(source_xpath, target_xpath)`` — the paper's Figure 2
    picture: one watermark-insert query and its rewriting for a
    reorganised document.  Raises when the target shape drops any field
    the query needs.
    """
    missing = [
        field_name for field_name in query.fields_used()
        if field_name not in target.placements
    ]
    if missing:
        raise RecordError(
            f"shape {target.name!r} drops field(s) {missing!r}; "
            "the query cannot be rewritten (lossy reorganisation)")
    return compile_logical(query, source), compile_logical(query, target)
