"""Query rewriting and document reorganisation (paper §2.2, Figure 2).

Public surface:

* :class:`~repro.rewriting.logical.LogicalQuery` — the organisation-
  independent identity-query form the encoder stores,
* :func:`~repro.rewriting.rewriter.compile_logical` — compile a logical
  query to XPath for a given :class:`DocumentShape`,
* :func:`~repro.rewriting.rewriter.rewrite` — compile for a source and a
  target shape at once,
* :func:`~repro.rewriting.reorganizer.reorganize` — restructure a
  document between shapes (Figure 1's db1 -> db2).
"""

from repro.rewriting.executor import LogicalExecutor
from repro.rewriting.logical import LogicalQuery, xpath_literal
from repro.rewriting.reorganizer import (
    ReorganizationResult,
    reorganize,
    roundtrip,
)
from repro.rewriting.rewriter import compile_logical, rewrite

__all__ = [
    "LogicalExecutor",
    "LogicalQuery",
    "ReorganizationResult",
    "compile_logical",
    "reorganize",
    "rewrite",
    "roundtrip",
    "xpath_literal",
]
