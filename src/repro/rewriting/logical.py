"""Logical (organisation-independent) queries.

WmXML's identity queries must survive schema reorganisation (paper
§2.2).  The reproduction achieves this by storing each identity query in
a *logical form* — "select field F of the rows where C1=v1 and C2=v2" —
and compiling that form to concrete XPath for whichever
:class:`~repro.semantics.shape.DocumentShape` the document currently
has.  Rewriting a query for a reorganised document is then simply
re-compilation against the new shape (Figure 2 of the paper).

The logical form is JSON-serialisable because the paper requires the
query set Q to be "safeguarded along with the secret key" — i.e.
persisted by the owner between embedding and detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class LogicalQuery:
    """Select the ``target`` field of rows matching all ``conditions``."""

    target: str
    conditions: tuple[tuple[str, str], ...]

    @classmethod
    def create(cls, target: str,
               conditions: Mapping[str, str]) -> "LogicalQuery":
        """Build from a mapping, normalising condition order."""
        return cls(target, tuple(sorted(conditions.items())))

    @property
    def condition_map(self) -> dict[str, str]:
        return dict(self.conditions)

    def fields_used(self) -> set[str]:
        """Every field the query mentions (target plus conditions)."""
        used = {self.target}
        used.update(name for name, _ in self.conditions)
        return used

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "conditions": [[name, value] for name, value in self.conditions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogicalQuery":
        return cls(
            data["target"],
            tuple((name, value) for name, value in data["conditions"]),
        )

    def __str__(self) -> str:
        conds = " and ".join(f"{n}={v!r}" for n, v in self.conditions)
        return f"select {self.target} where {conds or 'true'}"


def xpath_literal(value: str) -> str:
    """Render ``value`` as an XPath string literal.

    XPath 1.0 has no escape syntax inside literals, so values containing
    both quote kinds are assembled with ``concat()`` — the standard
    workaround.
    """
    if "'" not in value:
        return f"'{value}'"
    if '"' not in value:
        return f'"{value}"'
    parts: list[str] = []
    for chunk in value.split("'"):
        if parts:
            parts.append('"\'"')
        if chunk:
            parts.append(f"'{chunk}'")
    return f"concat({', '.join(parts)})"
