"""Indexed execution of logical queries.

Detection executes one identity query per stored record entry; compiled
XPath evaluates each from the document root, making detection
O(|Q| × |document|).  The paper's architecture runs the queries through
its "XML query engine" — this module is the engine's indexed fast path:

* the document is shredded **once** through its shape,
* every field gets an inverted index value -> row ids,
* a :class:`~repro.rewriting.logical.LogicalQuery` is answered by
  intersecting the posting lists of its conditions and projecting the
  target field's nodes.

Semantics match XPath compilation for the queries WmXML generates
(equality conditions over shape fields) — asserted by the test suite on
clean *and* attacked documents — while detection cost drops to
O(|document| + |Q|).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.rewriting.logical import LogicalQuery
from repro.semantics.errors import RecordError
from repro.semantics.shape import DocumentShape
from repro.xmlmodel.tree import Document, Element
from repro.xpath import NodeLike


class LogicalExecutor:
    """One-document, one-shape query executor with inverted indexes."""

    def __init__(self, document: Union[Document, Element],
                 shape: DocumentShape) -> None:
        self.shape = shape
        self._rows = shape.shred(document)
        # field -> value -> sorted row ids
        self._postings: dict[str, dict[str, list[int]]] = {}
        for row_id, row in enumerate(self._rows):
            for field_name, value in row.values.items():
                by_value = self._postings.setdefault(field_name, {})
                ids = by_value.setdefault(value, [])
                if not ids or ids[-1] != row_id:
                    ids.append(row_id)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def _candidate_ids(self, query: LogicalQuery) -> Optional[list[int]]:
        """Row ids matching all conditions; None means 'all rows'."""
        candidate: Optional[list[int]] = None
        for field_name, value in query.conditions:
            ids = self._postings.get(field_name, {}).get(value, [])
            if candidate is None:
                candidate = ids
            else:
                id_set = set(ids)
                candidate = [row_id for row_id in candidate
                             if row_id in id_set]
            if not candidate:
                return []
        return candidate

    def execute(self, query: LogicalQuery) -> list[NodeLike]:
        """The target-field nodes of rows matching the query.

        Nodes are deduplicated (several rows share a node after
        multi-field expansion) and returned in document/row order.
        """
        if query.target not in self.shape.placements:
            raise RecordError(
                f"shape {self.shape.name!r} does not materialise "
                f"{query.target!r}")
        candidate = self._candidate_ids(query)
        if candidate is None:
            candidate = range(len(self._rows))
        nodes: list[NodeLike] = []
        for row_id in candidate:
            node = self._rows[row_id].nodes.get(query.target)
            if node is None:
                continue
            if node not in nodes:
                nodes.append(node)
        return nodes

    def execute_strings(self, query: LogicalQuery) -> list[str]:
        """String values of the query result (test/debug helper)."""
        from repro.xpath import node_string_value

        return [node_string_value(node) for node in self.execute(query)]
