"""Shared machinery for WmXML's versioned JSON artefacts.

Schemes (``wmxml-scheme-v1``), watermark records (``wmxml-record-v1``),
and detection results (``wmxml-detection-v1``) all persist the same
way: a dict with a ``format`` version tag, JSON text, and a file.  This
mixin provides the common surface — ``to_json``/``from_json``/
``save``/``load`` plus the format-tag gate — around each class's own
``to_dict``/``from_dict``, so version-handling behaviour (error
wrapping, migration hooks) lives in exactly one place.

Like :mod:`repro.errors`, this module imports nothing above itself and
is usable from any layer.
"""

from __future__ import annotations

import json
from typing import ClassVar, Optional

from repro.errors import SerializationError


class VersionedDocument:
    """Mixin: versioned JSON round-trip for a ``to_dict``-able class.

    Subclasses set ``format_tag`` (the value of the ``format`` key) and
    ``format_error`` (the :class:`~repro.errors.SerializationError`
    subclass to raise on malformed input), and call
    :meth:`_check_format` at the top of their ``from_dict``.
    """

    format_tag: ClassVar[str]
    format_error: ClassVar[type] = SerializationError

    def to_dict(self) -> dict:  # pragma: no cover - subclasses override
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: dict):  # pragma: no cover - overridden
        raise NotImplementedError

    @classmethod
    def _check_format(cls, data) -> None:
        """Reject anything but a dict carrying this class's format tag."""
        if not isinstance(data, dict):
            raise cls.format_error(
                f"{cls.__name__} document must be an object, got "
                f"{type(data).__name__}")
        if data.get("format") != cls.format_tag:
            raise cls.format_error(
                f"not a {cls.format_tag} document "
                f"(format={data.get('format')!r})")

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise cls.format_error(
                f"{cls.__name__} document is not valid JSON: "
                f"{error}") from error
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def load(cls, path: str):
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
