"""Abstract syntax tree for the XPath 1.0 subset.

Every node knows how to render itself back to XPath text via ``str()``;
the query-rewriting layer relies on this to serialise rewritten identity
queries, so rendering must produce a string that re-parses to an
equivalent tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

# Axis names used by the evaluator.
CHILD = "child"
DESCENDANT = "descendant"
DESCENDANT_OR_SELF = "descendant-or-self"
SELF = "self"
PARENT = "parent"
ATTRIBUTE = "attribute"
ANCESTOR = "ancestor"
ANCESTOR_OR_SELF = "ancestor-or-self"
FOLLOWING_SIBLING = "following-sibling"
PRECEDING_SIBLING = "preceding-sibling"


class Expression:
    """Base class for every AST node."""

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    """A quoted string literal."""

    value: str

    def __str__(self) -> str:
        if "'" not in self.value:
            return f"'{self.value}'"
        return f'"{self.value}"'


@dataclass(frozen=True)
class Number(Expression):
    """A numeric literal (always a float internally)."""

    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class NameTest(Expression):
    """A node test matching elements/attributes by name; '*' is wildcard."""

    name: str

    def matches(self, tag: str) -> bool:
        return self.name == "*" or self.name == tag

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class NodeTypeTest(Expression):
    """``text()``, ``node()`` or ``comment()`` node tests."""

    node_type: str  # 'text' | 'node' | 'comment'

    def __str__(self) -> str:
        return f"{self.node_type}()"


@dataclass(frozen=True)
class Step(Expression):
    """One location step: axis, node test, and zero or more predicates."""

    axis: str
    test: Expression  # NameTest or NodeTypeTest
    predicates: tuple = ()

    def __str__(self) -> str:
        if self.axis == ATTRIBUTE:
            base = f"@{self.test}"
        elif self.axis == CHILD:
            base = str(self.test)
        elif self.axis == SELF and isinstance(self.test, NodeTypeTest) \
                and self.test.node_type == "node":
            base = "."
        elif self.axis == PARENT and isinstance(self.test, NodeTypeTest) \
                and self.test.node_type == "node":
            base = ".."
        else:
            base = f"{self.axis}::{self.test}"
        return base + "".join(f"[{p}]" for p in self.predicates)


@dataclass(frozen=True)
class LocationPath(Expression):
    """A (possibly absolute) sequence of steps."""

    absolute: bool
    steps: tuple

    def __str__(self) -> str:
        rendered: list[str] = []
        for step in self.steps:
            if (
                step.axis == DESCENDANT_OR_SELF
                and isinstance(step.test, NodeTypeTest)
                and step.test.node_type == "node"
                and not step.predicates
            ):
                # This is the expansion of '//'; re-abbreviate it.
                rendered.append("")
                continue
            rendered.append(str(step))
        body = "/".join(rendered)
        if self.absolute:
            return "/" + body
        return body


@dataclass(frozen=True)
class FilterExpression(Expression):
    """A primary expression with predicates and an optional trailing path.

    Covers forms like ``(//book)[1]/title``.
    """

    primary: Expression
    predicates: tuple = ()
    path: Optional[LocationPath] = None

    def __str__(self) -> str:
        text = f"({self.primary})" if not isinstance(
            self.primary, (Literal, Number, FunctionCall)) else str(self.primary)
        text += "".join(f"[{p}]" for p in self.predicates)
        if self.path is not None:
            text += "/" + str(self.path)
        return text


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A call to one of the core library functions."""

    name: str
    args: tuple = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operator: or, and, = != < <= > >=, + - * div mod, |."""

    op: str
    left: Expression
    right: Expression

    def __str__(self) -> str:
        if self.op == "|":
            return f"{self.left} | {self.right}"
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Negate(Expression):
    """Unary minus."""

    operand: Expression

    def __str__(self) -> str:
        return f"-{self.operand}"


def child_step(name: str, *predicates: Expression) -> Step:
    """Convenience constructor for a child::name step."""
    return Step(CHILD, NameTest(name), tuple(predicates))


def attribute_step(name: str, *predicates: Expression) -> Step:
    """Convenience constructor for an attribute::name step."""
    return Step(ATTRIBUTE, NameTest(name), tuple(predicates))


def descendant_anchor() -> Step:
    """The step '//' expands to: descendant-or-self::node()."""
    return Step(DESCENDANT_OR_SELF, NodeTypeTest("node"))


def path(*steps: Step, absolute: bool = True) -> LocationPath:
    """Convenience constructor for a location path."""
    return LocationPath(absolute, tuple(steps))


def equals(left: Expression, right: Expression) -> BinaryOp:
    """Convenience constructor for an equality comparison."""
    return BinaryOp("=", left, right)
