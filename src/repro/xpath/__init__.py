"""XPath 1.0-subset query engine over :mod:`repro.xmlmodel` trees.

This is the "XML query engine" of the WmXML architecture (Figure 4 of
the paper): the access layer through which the encoder and decoder
locate data elements.

Typical usage::

    from repro.xmlmodel import parse
    from repro.xpath import select, select_strings

    doc = parse("<db><book><title>DB Design</title>"
                "<author>Berstein</author></book></db>")
    authors = select_strings(doc, "/db/book[title='DB Design']/author")
    # -> ['Berstein']

The compiled form (:class:`XPathQuery`) caches the parsed AST so the
same identity query can be executed against many documents cheaply.
"""

from __future__ import annotations

from typing import Union

from repro.xmlmodel.tree import Document, Node
from repro.xpath import ast
from repro.xpath.errors import (
    XPathError,
    XPathFunctionError,
    XPathSyntaxError,
    XPathTypeError,
)
from repro.xpath.evaluator import Context, context_for, evaluate
from repro.xpath.parser import parse_xpath
from repro.xpath.values import (
    AttributeNode,
    NodeLike,
    XPathValue,
    is_node_set,
    node_string_value,
    to_boolean,
    to_number,
    to_string,
)


class XPathQuery:
    """A compiled XPath expression, reusable across documents."""

    __slots__ = ("text", "expression")

    def __init__(self, text: str) -> None:
        self.text = text
        self.expression = parse_xpath(text)

    def evaluate(self, target: Union[Document, NodeLike]) -> XPathValue:
        """Evaluate against a document or context node; any XPath type."""
        return evaluate(self.expression, context_for(target))

    def select(self, target: Union[Document, NodeLike]) -> list[NodeLike]:
        """Evaluate and require a node-set result."""
        value = self.evaluate(target)
        if not is_node_set(value):
            raise XPathTypeError(
                f"query {self.text!r} returned {type(value).__name__}, "
                "expected a node-set")
        return value

    def select_strings(self, target: Union[Document, NodeLike]) -> list[str]:
        """Evaluate to a node-set and return the nodes' string-values."""
        return [node_string_value(node) for node in self.select(target)]

    def __str__(self) -> str:
        return self.text

    def __repr__(self) -> str:
        return f"XPathQuery({self.text!r})"


_CACHE: dict[str, XPathQuery] = {}
_CACHE_LIMIT = 2048


def compile_xpath(text: str) -> XPathQuery:
    """Compile (with memoisation) an XPath expression."""
    query = _CACHE.get(text)
    if query is None:
        query = XPathQuery(text)
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.clear()
        _CACHE[text] = query
    return query


def select(target: Union[Document, NodeLike], path: str) -> list[NodeLike]:
    """Evaluate ``path`` against ``target``; return a node-set."""
    return compile_xpath(path).select(target)


def select_strings(target: Union[Document, NodeLike], path: str) -> list[str]:
    """Evaluate ``path``; return the string-values of the result nodes."""
    return compile_xpath(path).select_strings(target)


def evaluate_xpath(target: Union[Document, NodeLike], path: str) -> XPathValue:
    """Evaluate ``path``; return whatever XPath type it produces."""
    return compile_xpath(path).evaluate(target)


__all__ = [
    "AttributeNode",
    "Context",
    "NodeLike",
    "XPathError",
    "XPathFunctionError",
    "XPathQuery",
    "XPathSyntaxError",
    "XPathTypeError",
    "XPathValue",
    "ast",
    "compile_xpath",
    "evaluate_xpath",
    "is_node_set",
    "node_string_value",
    "select",
    "select_strings",
    "to_boolean",
    "to_number",
    "to_string",
]
