"""Core function library for the XPath engine.

Each function receives the evaluation context plus its already-evaluated
arguments (XPath values).  The registry is a plain dict so downstream
code could add functions, but the core library below covers everything
WmXML's identity queries and usability templates need.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.xpath.errors import XPathFunctionError
from repro.xpath.values import (
    XPathValue,
    is_node_set,
    node_string_value,
    to_boolean,
    to_number,
    to_string,
)

FunctionImpl = Callable[..., XPathValue]

REGISTRY: dict[str, FunctionImpl] = {}


def register(name: str) -> Callable[[FunctionImpl], FunctionImpl]:
    """Decorator adding a function to the registry under ``name``."""

    def decorator(func: FunctionImpl) -> FunctionImpl:
        REGISTRY[name] = func
        return func

    return decorator


def call(name: str, context, args: list[XPathValue]) -> XPathValue:
    """Invoke registry function ``name`` with ``args``."""
    try:
        func = REGISTRY[name]
    except KeyError:
        raise XPathFunctionError(f"unknown function {name}()") from None
    try:
        return func(context, *args)
    except TypeError as exc:
        raise XPathFunctionError(f"bad arguments for {name}(): {exc}") from None


def _require_node_set(value: XPathValue, func: str) -> list:
    if not is_node_set(value):
        raise XPathFunctionError(f"{func}() requires a node-set argument")
    return value


# -- node-set functions ------------------------------------------------------------


@register("position")
def _position(context) -> float:
    return float(context.position)


@register("last")
def _last(context) -> float:
    return float(context.size)


@register("count")
def _count(context, node_set: XPathValue) -> float:
    return float(len(_require_node_set(node_set, "count")))


@register("name")
def _name(context, node_set: XPathValue = None) -> str:
    from repro.xmlmodel.tree import Element
    from repro.xpath.values import AttributeNode

    if node_set is None:
        target = context.node
    else:
        nodes = _require_node_set(node_set, "name")
        if not nodes:
            return ""
        target = nodes[0]
    if isinstance(target, Element):
        return target.tag
    if isinstance(target, AttributeNode):
        return target.name
    return ""


@register("sum")
def _sum(context, node_set: XPathValue) -> float:
    nodes = _require_node_set(node_set, "sum")
    return float(sum(to_number(node_string_value(n)) for n in nodes))


# -- string functions ------------------------------------------------------------


@register("string")
def _string(context, value: XPathValue = None) -> str:
    if value is None:
        return node_string_value(context.node)
    return to_string(value)


@register("concat")
def _concat(context, *values: XPathValue) -> str:
    if len(values) < 2:
        raise XPathFunctionError("concat() requires at least two arguments")
    return "".join(to_string(v) for v in values)


@register("contains")
def _contains(context, haystack: XPathValue, needle: XPathValue) -> bool:
    return to_string(needle) in to_string(haystack)


@register("starts-with")
def _starts_with(context, haystack: XPathValue, prefix: XPathValue) -> bool:
    return to_string(haystack).startswith(to_string(prefix))


@register("ends-with")
def _ends_with(context, haystack: XPathValue, suffix: XPathValue) -> bool:
    # XPath 2.0 convenience retained because identity queries over text
    # payloads use it; harmless superset of 1.0.
    return to_string(haystack).endswith(to_string(suffix))


@register("substring-before")
def _substring_before(context, haystack: XPathValue, sep: XPathValue) -> str:
    text, parts = to_string(haystack), to_string(sep)
    index = text.find(parts)
    return text[:index] if index >= 0 else ""


@register("substring-after")
def _substring_after(context, haystack: XPathValue, sep: XPathValue) -> str:
    text, parts = to_string(haystack), to_string(sep)
    index = text.find(parts)
    return text[index + len(parts):] if index >= 0 else ""


@register("substring")
def _substring(context, value: XPathValue, start: XPathValue,
               length: XPathValue = None) -> str:
    text = to_string(value)
    begin = to_number(start)
    if math.isnan(begin):
        return ""
    begin = round(begin)
    if length is None:
        end = len(text) + 1
    else:
        span = to_number(length)
        if math.isnan(span):
            return ""
        end = begin + round(span)
    # XPath positions are 1-based; clamp to the string.
    chars = [
        ch for pos, ch in enumerate(text, start=1) if begin <= pos < end
    ]
    return "".join(chars)


@register("string-length")
def _string_length(context, value: XPathValue = None) -> float:
    if value is None:
        return float(len(node_string_value(context.node)))
    return float(len(to_string(value)))


@register("normalize-space")
def _normalize_space(context, value: XPathValue = None) -> str:
    if value is None:
        text = node_string_value(context.node)
    else:
        text = to_string(value)
    return " ".join(text.split())


@register("translate")
def _translate(context, value: XPathValue, source: XPathValue,
               target: XPathValue) -> str:
    text = to_string(value)
    src, dst = to_string(source), to_string(target)
    table: dict[int, int | None] = {}
    for index, char in enumerate(src):
        if ord(char) in table:
            continue
        table[ord(char)] = ord(dst[index]) if index < len(dst) else None
    return text.translate(table)


# -- boolean functions ------------------------------------------------------------


@register("boolean")
def _boolean(context, value: XPathValue) -> bool:
    return to_boolean(value)


@register("not")
def _not(context, value: XPathValue) -> bool:
    return not to_boolean(value)


@register("true")
def _true(context) -> bool:
    return True


@register("false")
def _false(context) -> bool:
    return False


# -- number functions ------------------------------------------------------------


@register("number")
def _number(context, value: XPathValue = None) -> float:
    if value is None:
        return to_number(node_string_value(context.node))
    return to_number(value)


@register("floor")
def _floor(context, value: XPathValue) -> float:
    number = to_number(value)
    return number if math.isnan(number) else float(math.floor(number))


@register("ceiling")
def _ceiling(context, value: XPathValue) -> float:
    number = to_number(value)
    return number if math.isnan(number) else float(math.ceil(number))


@register("round")
def _round(context, value: XPathValue) -> float:
    number = to_number(value)
    if math.isnan(number) or math.isinf(number):
        return number
    # XPath rounds .5 towards positive infinity.
    return float(math.floor(number + 0.5))
