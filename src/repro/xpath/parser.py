"""Recursive-descent parser for the XPath 1.0 subset.

Grammar (standard XPath 1.0 with the axes listed in
:mod:`repro.xpath.lexer`):

.. code-block:: text

    Expr          := OrExpr
    OrExpr        := AndExpr ('or' AndExpr)*
    AndExpr       := EqualityExpr ('and' EqualityExpr)*
    EqualityExpr  := RelationalExpr (('='|'!=') RelationalExpr)*
    RelationalExpr:= AdditiveExpr (('<'|'<='|'>'|'>=') AdditiveExpr)*
    AdditiveExpr  := MultiplicativeExpr (('+'|'-') MultiplicativeExpr)*
    Multiplicative:= UnaryExpr (('*'|'div'|'mod') UnaryExpr)*
    UnaryExpr     := '-'* UnionExpr
    UnionExpr     := PathExpr ('|' PathExpr)*
    PathExpr      := LocationPath
                   | FilterExpr (('/'|'//') RelativeLocationPath)?
    FilterExpr    := PrimaryExpr Predicate*
    PrimaryExpr   := '(' Expr ')' | Literal | Number | FunctionCall
"""

from __future__ import annotations

from typing import Optional

from repro.xpath import ast
from repro.xpath.errors import XPathSyntaxError
from repro.xpath.lexer import (
    AT,
    AXIS,
    COMMA,
    DOT,
    DOTDOT,
    EOF,
    LBRACKET,
    LITERAL,
    LPAREN,
    NAME,
    NUMBER,
    OPERATOR,
    RBRACKET,
    RPAREN,
    Token,
    tokenize,
)

_NODE_TYPE_TESTS = frozenset({"text", "node", "comment"})


class _Parser:
    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.tokens = tokenize(expression)
        self.index = 0

    # -- token helpers ------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != EOF:
            self.index += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.current.matches(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            want = value or kind
            raise self.error(f"expected {want!r}, got {self.current.value!r}")
        return token

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, self.expression, self.current.position)

    # -- entry point ------------------------------------------------------------

    def parse(self) -> ast.Expression:
        expr = self.parse_expr()
        if self.current.kind != EOF:
            raise self.error(f"unexpected trailing token {self.current.value!r}")
        return expr

    # -- expression levels --------------------------------------------------------

    def parse_expr(self) -> ast.Expression:
        return self.parse_or()

    def _parse_binary_level(self, ops: tuple[str, ...], next_level) -> ast.Expression:
        left = next_level()
        while self.current.kind == OPERATOR and self.current.value in ops:
            op = self.advance().value
            right = next_level()
            left = ast.BinaryOp(op, left, right)
        return left

    def parse_or(self) -> ast.Expression:
        return self._parse_binary_level(("or",), self.parse_and)

    def parse_and(self) -> ast.Expression:
        return self._parse_binary_level(("and",), self.parse_equality)

    def parse_equality(self) -> ast.Expression:
        return self._parse_binary_level(("=", "!="), self.parse_relational)

    def parse_relational(self) -> ast.Expression:
        return self._parse_binary_level(
            ("<", "<=", ">", ">="), self.parse_additive)

    def parse_additive(self) -> ast.Expression:
        return self._parse_binary_level(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self) -> ast.Expression:
        return self._parse_binary_level(
            ("*", "div", "mod"), self.parse_unary)

    def parse_unary(self) -> ast.Expression:
        negations = 0
        while self.accept(OPERATOR, "-"):
            negations += 1
        expr = self.parse_union()
        for _ in range(negations):
            expr = ast.Negate(expr)
        return expr

    def parse_union(self) -> ast.Expression:
        left = self.parse_path_expr()
        while self.current.matches(OPERATOR, "|"):
            self.advance()
            right = self.parse_path_expr()
            left = ast.BinaryOp("|", left, right)
        return left

    # -- paths ------------------------------------------------------------

    def parse_path_expr(self) -> ast.Expression:
        if self._at_filter_start():
            primary = self.parse_primary()
            predicates = self.parse_predicates()
            trailing: Optional[ast.LocationPath] = None
            if self.current.kind == OPERATOR and self.current.value in ("/", "//"):
                steps: list[ast.Step] = []
                if self.advance().value == "//":
                    steps.append(ast.descendant_anchor())
                steps.extend(self.parse_relative_path())
                trailing = ast.LocationPath(False, tuple(steps))
            if not predicates and trailing is None:
                return primary
            return ast.FilterExpression(primary, tuple(predicates), trailing)
        return self.parse_location_path()

    def _at_filter_start(self) -> bool:
        token = self.current
        if token.kind in (LITERAL, NUMBER, LPAREN):
            return True
        if token.kind == NAME and self.peek().kind == LPAREN:
            # Function call — unless it is a node-type test, which only
            # appears inside a step; treat bare 'text()' as a step.
            return token.value not in _NODE_TYPE_TESTS
        return False

    def parse_location_path(self) -> ast.LocationPath:
        steps: list[ast.Step] = []
        absolute = False
        if self.current.kind == OPERATOR and self.current.value in ("/", "//"):
            absolute = True
            if self.advance().value == "//":
                steps.append(ast.descendant_anchor())
            elif self._at_path_end():
                # Bare '/' selects the root.
                return ast.LocationPath(True, ())
        steps.extend(self.parse_relative_path())
        return ast.LocationPath(absolute, tuple(steps))

    def _at_path_end(self) -> bool:
        token = self.current
        return token.kind in (EOF, RPAREN, RBRACKET, COMMA) or (
            token.kind == OPERATOR and token.value not in ("/", "//"))

    def parse_relative_path(self) -> list[ast.Step]:
        steps = [self.parse_step()]
        while self.current.kind == OPERATOR and self.current.value in ("/", "//"):
            if self.advance().value == "//":
                steps.append(ast.descendant_anchor())
            steps.append(self.parse_step())
        return steps

    def parse_step(self) -> ast.Step:
        if self.accept(DOT):
            return ast.Step(ast.SELF, ast.NodeTypeTest("node"),
                            tuple(self.parse_predicates()))
        if self.accept(DOTDOT):
            return ast.Step(ast.PARENT, ast.NodeTypeTest("node"),
                            tuple(self.parse_predicates()))
        axis = ast.CHILD
        if self.current.kind == AXIS:
            axis = self.advance().value
        elif self.accept(AT):
            axis = ast.ATTRIBUTE
        test = self.parse_node_test(axis)
        predicates = self.parse_predicates()
        return ast.Step(axis, test, tuple(predicates))

    def parse_node_test(self, axis: str) -> ast.Expression:
        token = self.current
        if token.kind != NAME:
            raise self.error("expected a node test")
        if token.value in _NODE_TYPE_TESTS and self.peek().kind == LPAREN:
            self.advance()
            self.expect(LPAREN)
            self.expect(RPAREN)
            return ast.NodeTypeTest(token.value)
        self.advance()
        return ast.NameTest(token.value)

    def parse_predicates(self) -> list[ast.Expression]:
        predicates: list[ast.Expression] = []
        while self.accept(LBRACKET):
            predicates.append(self.parse_expr())
            self.expect(RBRACKET)
        return predicates

    # -- primaries ------------------------------------------------------------

    def parse_primary(self) -> ast.Expression:
        token = self.current
        if token.kind == LITERAL:
            self.advance()
            return ast.Literal(token.value)
        if token.kind == NUMBER:
            self.advance()
            return ast.Number(float(token.value))
        if token.kind == LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(RPAREN)
            return expr
        if token.kind == NAME and self.peek().kind == LPAREN:
            name = self.advance().value
            self.expect(LPAREN)
            args: list[ast.Expression] = []
            if self.current.kind != RPAREN:
                args.append(self.parse_expr())
                while self.accept(COMMA):
                    args.append(self.parse_expr())
            self.expect(RPAREN)
            return ast.FunctionCall(name, tuple(args))
        raise self.error(f"unexpected token {token.value!r}")


def parse_xpath(expression: str) -> ast.Expression:
    """Parse ``expression`` into an AST; raises :class:`XPathSyntaxError`."""
    if not isinstance(expression, str):
        raise TypeError("XPath expression must be a string")
    if not expression.strip():
        raise XPathSyntaxError("empty expression", expression, 0)
    return _Parser(expression).parse()
