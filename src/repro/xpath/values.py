"""XPath 1.0 value model: node-sets, booleans, numbers, strings.

The four XPath types map onto Python as:

* node-set  -> ``list`` of tree nodes / :class:`AttributeNode`
* boolean   -> ``bool``
* number    -> ``float`` (NaN used for failed numeric conversions)
* string    -> ``str``

This module owns the conversion rules between them and the comparison
semantics (node-set comparisons are existential, as per the spec).
"""

from __future__ import annotations

import math
from typing import Iterable, Union

from repro.xmlmodel.tree import Comment, Element, Node, ProcessingInstruction, Text
from repro.xpath.errors import XPathTypeError


class AttributeNode:
    """A first-class attribute node, created on demand by the ``@`` axis.

    The tree model stores attributes in a dict on their owner element;
    the XPath data model (and the watermark embedder, which must be able
    to *select and rewrite* attribute values) needs them addressable as
    nodes.  Two :class:`AttributeNode` instances are equal when they name
    the same attribute of the same element object.
    """

    __slots__ = ("owner", "name")

    def __init__(self, owner: Element, name: str) -> None:
        if name not in owner.attributes:
            raise XPathTypeError(
                f"element <{owner.tag}> has no attribute {name!r}")
        self.owner = owner
        self.name = name

    @property
    def value(self) -> str:
        """Current value of the underlying attribute."""
        return self.owner.attributes[self.name]

    def set_value(self, value: str) -> None:
        """Write through to the owner element (used by the embedder)."""
        self.owner.set_attribute(self.name, value)

    def string_value(self) -> str:
        return self.value

    def path(self) -> str:
        """Physical path such as ``/db/book[1]/@publisher``."""
        return f"{self.owner.path()}/@{self.name}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AttributeNode)
            and other.owner is self.owner
            and other.name == self.name
        )

    def __hash__(self) -> int:
        return hash((id(self.owner), self.name))

    def __repr__(self) -> str:
        return f"AttributeNode({self.owner.tag}/@{self.name}={self.value!r})"


#: Anything a node-set may contain.
NodeLike = Union[Node, AttributeNode]
#: Any XPath value.
XPathValue = Union[list, bool, float, str]


def is_node_set(value: XPathValue) -> bool:
    """True when ``value`` is a node-set (a Python list)."""
    return isinstance(value, list)


def node_string_value(node: NodeLike) -> str:
    """The XPath string-value of any node kind."""
    if isinstance(node, AttributeNode):
        return node.value
    if isinstance(node, (Element, Text, Comment, ProcessingInstruction)):
        return node.string_value()
    raise XPathTypeError(f"not a node: {type(node).__name__}")


def to_string(value: XPathValue) -> str:
    """The string() conversion."""
    if isinstance(value, list):
        if not value:
            return ""
        return node_string_value(value[0])
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_number(value)
    if isinstance(value, str):
        return value
    raise XPathTypeError(f"not an XPath value: {type(value).__name__}")


def to_number(value: XPathValue) -> float:
    """The number() conversion; returns NaN for unconvertible strings."""
    if isinstance(value, list):
        return to_number(to_string(value))
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return math.nan
    raise XPathTypeError(f"not an XPath value: {type(value).__name__}")


def to_boolean(value: XPathValue) -> bool:
    """The boolean() conversion."""
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return bool(value) and not math.isnan(value)
    if isinstance(value, str):
        return bool(value)
    raise XPathTypeError(f"not an XPath value: {type(value).__name__}")


def format_number(number: float) -> str:
    """Render a number the way XPath's string() does.

    Integral values print without a decimal point; NaN and infinities get
    their spec spellings.
    """
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "Infinity" if number > 0 else "-Infinity"
    if number == int(number):
        return str(int(number))
    return repr(number)


_NUMERIC_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def compare(op: str, left: XPathValue, right: XPathValue) -> bool:
    """XPath 1.0 comparison semantics for ``op`` in = != < <= > >=.

    Node-set comparisons are existential: a node-set compares true when
    *some* node in it satisfies the comparison.
    """
    if op not in _NUMERIC_OPS:
        raise XPathTypeError(f"unknown comparison operator {op!r}")
    # Node-set vs boolean compares boolean(node-set) with the boolean —
    # *not* existentially — so an empty node-set equals false().
    if isinstance(left, list) and isinstance(right, bool):
        return _NUMERIC_OPS[op](to_boolean(left), right)
    if isinstance(right, list) and isinstance(left, bool):
        return _NUMERIC_OPS[op](left, to_boolean(right))
    if isinstance(left, list) and isinstance(right, list):
        right_strings = [node_string_value(n) for n in right]
        for node in left:
            left_string = node_string_value(node)
            for right_string in right_strings:
                if _compare_atomic(op, left_string, right_string):
                    return True
        return False
    if isinstance(left, list):
        return any(
            _compare_node_against(op, node, right) for node in left)
    if isinstance(right, list):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                   "=": "=", "!=": "!="}[op]
        return any(
            _compare_node_against(flipped, node, left) for node in right)
    return _compare_atomic(op, left, right)


def _compare_node_against(op: str, node: NodeLike, value: XPathValue) -> bool:
    text = node_string_value(node)
    if isinstance(value, bool):
        return _NUMERIC_OPS[op](to_boolean([node]), value)
    if isinstance(value, float):
        return _apply_numeric(op, to_number(text), value)
    if isinstance(value, str):
        if op in ("=", "!="):
            return _NUMERIC_OPS[op](text, value)
        return _apply_numeric(op, to_number(text), to_number(value))
    raise XPathTypeError(f"cannot compare node with {type(value).__name__}")


def _compare_atomic(op: str, left: XPathValue, right: XPathValue) -> bool:
    if op in ("=", "!="):
        if isinstance(left, bool) or isinstance(right, bool):
            return _NUMERIC_OPS[op](to_boolean(left), to_boolean(right))
        if isinstance(left, float) or isinstance(right, float):
            return _apply_numeric(op, to_number(left), to_number(right))
        return _NUMERIC_OPS[op](to_string(left), to_string(right))
    return _apply_numeric(op, to_number(left), to_number(right))


def _apply_numeric(op: str, left: float, right: float) -> bool:
    if math.isnan(left) or math.isnan(right):
        # NaN compares false to everything, including for '!=' per IEEE —
        # XPath inherits this behaviour except NaN != x is true only when
        # both are convertible; we follow IEEE like major implementations.
        return op == "!=" and not (math.isnan(left) and math.isnan(right))
    return _NUMERIC_OPS[op](left, right)


def unique_nodes(nodes: Iterable[NodeLike]) -> list[NodeLike]:
    """Deduplicate a node sequence while keeping first-seen order."""
    seen: set = set()
    result: list[NodeLike] = []
    for node in nodes:
        key = node if isinstance(node, AttributeNode) else id(node)
        if key in seen:
            continue
        seen.add(key)
        result.append(node)
    return result
