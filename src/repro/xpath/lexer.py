"""Tokenizer for the XPath 1.0 subset.

Implements the spec's lexical disambiguation rules:

* ``*`` is the multiply operator when the preceding token could end an
  expression, otherwise it is the wildcard name test;
* ``and`` / ``or`` / ``div`` / ``mod`` are operators in the same
  circumstance, otherwise ordinary names;
* a name followed by ``(`` is a function call (or node-type test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.xpath.errors import XPathSyntaxError

# Token kinds.
NAME = "NAME"                  # element/attribute/function names
NUMBER = "NUMBER"
LITERAL = "LITERAL"            # quoted string
OPERATOR = "OPERATOR"          # = != < <= > >= + - * div mod and or | / //
LPAREN, RPAREN = "LPAREN", "RPAREN"
LBRACKET, RBRACKET = "LBRACKET", "RBRACKET"
AT = "AT"
COMMA = "COMMA"
DOT, DOTDOT = "DOT", "DOTDOT"
AXIS = "AXIS"                  # name:: prefix
EOF = "EOF"

_TWO_CHAR_OPS = ("//", "!=", "<=", ">=")
_ONE_CHAR_OPS = "/|+-=<>*"
_OPERATOR_NAMES = frozenset({"and", "or", "div", "mod"})
_NAME_START = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_NAME_CHARS = _NAME_START | frozenset("0123456789.-") | {":"}
_AXIS_NAMES = frozenset({
    "child", "descendant", "descendant-or-self", "self", "parent",
    "attribute", "ancestor", "ancestor-or-self", "following-sibling",
    "preceding-sibling",
})


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: str
    value: str
    position: int

    def matches(self, kind: str, value: Optional[str] = None) -> bool:
        return self.kind == kind and (value is None or self.value == value)


def tokenize(expression: str) -> list[Token]:
    """Tokenize ``expression``; raises :class:`XPathSyntaxError` on junk."""
    return list(_tokens(expression))


def _tokens(expression: str) -> Iterator[Token]:
    pos = 0
    length = len(expression)
    previous: Optional[Token] = None

    def emit(kind: str, value: str, at: int) -> Token:
        nonlocal previous
        token = Token(kind, value, at)
        previous = token
        return token

    while pos < length:
        char = expression[pos]
        if char in " \t\r\n":
            pos += 1
            continue
        start = pos
        two = expression[pos:pos + 2]
        if two in _TWO_CHAR_OPS:
            yield emit(OPERATOR, two, start)
            pos += 2
            continue
        if two == "..":
            yield emit(DOTDOT, "..", start)
            pos += 2
            continue
        if char == ".":
            if pos + 1 < length and expression[pos + 1].isdigit():
                pos, text = _read_number(expression, pos)
                yield emit(NUMBER, text, start)
            else:
                yield emit(DOT, ".", start)
                pos += 1
            continue
        if char.isdigit():
            pos, text = _read_number(expression, pos)
            yield emit(NUMBER, text, start)
            continue
        if char in "'\"":
            end = expression.find(char, pos + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal",
                                       expression, start)
            yield emit(LITERAL, expression[pos + 1:end], start)
            pos = end + 1
            continue
        if char == "(":
            yield emit(LPAREN, "(", start)
            pos += 1
            continue
        if char == ")":
            yield emit(RPAREN, ")", start)
            pos += 1
            continue
        if char == "[":
            yield emit(LBRACKET, "[", start)
            pos += 1
            continue
        if char == "]":
            yield emit(RBRACKET, "]", start)
            pos += 1
            continue
        if char == "@":
            yield emit(AT, "@", start)
            pos += 1
            continue
        if char == ",":
            yield emit(COMMA, ",", start)
            pos += 1
            continue
        if char in _ONE_CHAR_OPS:
            if char == "*" and not _operator_expected(previous):
                yield emit(NAME, "*", start)
            else:
                yield emit(OPERATOR, char, start)
            pos += 1
            continue
        if char in _NAME_START:
            pos, name = _read_name(expression, pos)
            if expression[pos:pos + 2] == "::":
                if name not in _AXIS_NAMES:
                    raise XPathSyntaxError(f"unknown axis {name!r}",
                                           expression, start)
                yield emit(AXIS, name, start)
                pos += 2
                continue
            if name in _OPERATOR_NAMES and _operator_expected(previous):
                yield emit(OPERATOR, name, start)
            else:
                yield emit(NAME, name, start)
            continue
        raise XPathSyntaxError(f"unexpected character {char!r}",
                               expression, pos)
    yield Token(EOF, "", length)


def _operator_expected(previous: Optional[Token]) -> bool:
    """True when the lexer should read ``*``/``and``/... as an operator.

    Per the XPath spec: an operator is expected when the preceding token
    is something that can end an expression.
    """
    if previous is None:
        return False
    if previous.kind in (NAME, NUMBER, LITERAL, RPAREN, RBRACKET, DOT, DOTDOT):
        return True
    return False


def _read_number(expression: str, pos: int) -> tuple[int, str]:
    start = pos
    length = len(expression)
    while pos < length and expression[pos].isdigit():
        pos += 1
    if pos < length and expression[pos] == ".":
        pos += 1
        while pos < length and expression[pos].isdigit():
            pos += 1
    return pos, expression[start:pos]


def _read_name(expression: str, pos: int) -> tuple[int, str]:
    start = pos
    length = len(expression)
    pos += 1
    while pos < length and expression[pos] in _NAME_CHARS:
        if expression[pos] == ":":
            # Stop before '::' so axis specifiers like child:: lex as an
            # AXIS token; a single colon stays part of a qualified name.
            if pos + 1 < length and expression[pos + 1] == ":":
                break
        pos += 1
    name = expression[start:pos]
    # Do not let a name swallow '..', a trailing '.' or a trailing ':'.
    while name and name[-1] in ".:":
        name = name[:-1]
        pos -= 1
    return pos, name
