"""Exceptions raised by the XPath engine."""

from __future__ import annotations

from repro.errors import WmXMLError


class XPathError(WmXMLError):
    """Base class for all XPath engine errors."""

    code = "xpath-error"


class XPathSyntaxError(XPathError):
    """An XPath expression failed to parse.

    ``position`` is the 0-based character offset of the offending token
    within the expression text.
    """

    code = "xpath-syntax"

    def __init__(self, message: str, expression: str, position: int) -> None:
        pointer = " " * position + "^"
        super().__init__(f"{message}\n  {expression}\n  {pointer}")
        self.message = message
        self.expression = expression
        self.position = position


class XPathTypeError(XPathError):
    """An operation was applied to a value of the wrong XPath type."""

    code = "xpath-type"


class XPathFunctionError(XPathError):
    """Unknown function, or a function called with bad arguments."""

    code = "xpath-function"
