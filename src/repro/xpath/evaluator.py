"""Evaluator for the XPath 1.0 subset.

The evaluator walks the AST produced by :mod:`repro.xpath.parser` against
the tree model.  Node-sets are kept in document order (required for
positional predicates) and deduplicated after descendant axes.

The public entry points live in :mod:`repro.xpath` (``compile_xpath`` /
``select`` / ``select_strings``); this module contains the machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.xmlmodel.tree import Comment, Document, Element, Node, Text
from repro.xpath import ast, functions
from repro.xpath.errors import XPathTypeError
from repro.xpath.values import (
    AttributeNode,
    NodeLike,
    XPathValue,
    compare,
    is_node_set,
    to_boolean,
    to_number,
    unique_nodes,
)


@dataclass
class Context:
    """Evaluation context: the context node plus position/size.

    ``position`` and ``size`` are 1-based, per the XPath data model.
    """

    node: NodeLike
    position: int = 1
    size: int = 1

    def with_node(self, node: NodeLike, position: int, size: int) -> "Context":
        return Context(node=node, position=position, size=size)


def evaluate(expr: ast.Expression, context: Context) -> XPathValue:
    """Evaluate ``expr`` in ``context`` and return an XPath value."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.Negate):
        return -to_number(evaluate(expr.operand, context))
    if isinstance(expr, ast.BinaryOp):
        return _evaluate_binary(expr, context)
    if isinstance(expr, ast.FunctionCall):
        args = [evaluate(arg, context) for arg in expr.args]
        return functions.call(expr.name, context, args)
    if isinstance(expr, ast.LocationPath):
        return _evaluate_path(expr, context)
    if isinstance(expr, ast.FilterExpression):
        return _evaluate_filter(expr, context)
    raise XPathTypeError(f"cannot evaluate {type(expr).__name__}")


# -- operators ------------------------------------------------------------


def _evaluate_binary(expr: ast.BinaryOp, context: Context) -> XPathValue:
    op = expr.op
    if op == "or":
        return (to_boolean(evaluate(expr.left, context))
                or to_boolean(evaluate(expr.right, context)))
    if op == "and":
        return (to_boolean(evaluate(expr.left, context))
                and to_boolean(evaluate(expr.right, context)))
    left = evaluate(expr.left, context)
    right = evaluate(expr.right, context)
    if op in ("=", "!=", "<", "<=", ">", ">="):
        return compare(op, left, right)
    if op == "|":
        if not is_node_set(left) or not is_node_set(right):
            raise XPathTypeError("'|' requires node-set operands")
        merged = unique_nodes(list(left) + list(right))
        return _document_order(merged)
    left_num, right_num = to_number(left), to_number(right)
    if op == "+":
        return left_num + right_num
    if op == "-":
        return left_num - right_num
    if op == "*":
        return left_num * right_num
    if op == "div":
        if right_num == 0:
            if left_num == 0 or math.isnan(left_num):
                return math.nan
            return math.inf if left_num > 0 else -math.inf
        return left_num / right_num
    if op == "mod":
        if right_num == 0 or math.isnan(left_num) or math.isnan(right_num):
            return math.nan
        return math.fmod(left_num, right_num)
    raise XPathTypeError(f"unknown operator {op!r}")


# -- paths ------------------------------------------------------------


def _evaluate_path(path: ast.LocationPath, context: Context) -> list[NodeLike]:
    if path.absolute:
        root = _document_root(context.node)
        if not path.steps:
            return [root]
        nodes, remaining = _start_absolute(list(path.steps), root)
    else:
        nodes = [context.node]
        remaining = list(path.steps)
    for step in remaining:
        nodes = _evaluate_step(step, nodes)
    return nodes


def _is_anchor(step: ast.Step) -> bool:
    """True for the expansion of '//': descendant-or-self::node()."""
    return (
        step.axis == ast.DESCENDANT_OR_SELF
        and isinstance(step.test, ast.NodeTypeTest)
        and step.test.node_type == "node"
        and not step.predicates
    )


def _start_absolute(
    steps: list[ast.Step], root: Element
) -> tuple[list[NodeLike], list[ast.Step]]:
    """Consume the leading step(s) of an absolute path.

    An absolute path starts at the (implicit) document node, whose only
    element child is the root element.  The tree model has no document
    node object, so the leading axes are mapped directly:

    * ``/X``   -> the root element when it matches the test,
    * ``//X``  -> every descendant-or-self node of the root matching X
      (the anchor step is fused with the following child step so the
      root element itself is eligible, exactly as the spec's expansion
      through the document node implies),
    * descendant axes -> matching nodes among root and its descendants,
    * anything else -> evaluated with the root element as context.
    """
    first = steps[0]
    if _is_anchor(first) and len(steps) >= 2 and steps[1].axis == ast.CHILD:
        fused = steps[1]
        candidates: list[NodeLike] = _descendant_matches(root, fused.test)
        for predicate in fused.predicates:
            candidates = _apply_predicate(candidates, predicate)
        return candidates, steps[2:]
    if first.axis == ast.CHILD:
        candidates = [root] if _test_matches(first.test, root) else []
    elif first.axis in (ast.DESCENDANT, ast.DESCENDANT_OR_SELF):
        candidates = _descendant_matches(root, first.test)
    else:
        return _evaluate_step(first, [root]), steps[1:]
    for predicate in first.predicates:
        candidates = _apply_predicate(candidates, predicate)
    return candidates, steps[1:]


def _descendant_matches(root: Element, test: ast.Expression) -> list[NodeLike]:
    """Descendant-or-self nodes of ``root`` matching ``test`` (indexed)."""
    if isinstance(test, ast.NameTest) and test.name != "*":
        return list(root.descendants_by_tag(test.name))
    return [
        node for node in _descendants_or_self(root)
        if _test_matches(test, node)
    ]


def _evaluate_filter(expr: ast.FilterExpression, context: Context) -> XPathValue:
    value = evaluate(expr.primary, context)
    if expr.predicates or expr.path is not None:
        if not is_node_set(value):
            raise XPathTypeError(
                "predicates/paths can only follow node-set expressions")
        nodes = value
        for predicate in expr.predicates:
            nodes = _apply_predicate(nodes, predicate)
        if expr.path is not None:
            for step in expr.path.steps:
                nodes = _evaluate_step(step, nodes)
        return nodes
    return value


def _evaluate_step(step: ast.Step, nodes: list[NodeLike]) -> list[NodeLike]:
    gathered: list[NodeLike] = []
    for node in nodes:
        gathered.extend(_axis_candidates(step, node))
    # Distinct context nodes can never share a child or an attribute, and
    # a single context node yields unique candidates on every axis — the
    # dedup pass is only needed for overlapping axes over several nodes.
    if len(nodes) > 1 and step.axis not in (ast.CHILD, ast.ATTRIBUTE):
        gathered = unique_nodes(gathered)
    for predicate in step.predicates:
        gathered = _apply_predicate(gathered, predicate)
    return gathered


def _apply_predicate(nodes: list[NodeLike],
                     predicate: ast.Expression) -> list[NodeLike]:
    fast = _fast_predicate(predicate)
    if fast is not None:
        kept = []
        for node in nodes:
            if isinstance(node, Element):
                if fast(node):
                    kept.append(node)
            elif _matches_generic(predicate, node):
                kept.append(node)
        return kept
    size = len(nodes)
    kept = []
    for position, node in enumerate(nodes, start=1):
        context = Context(node=node, position=position, size=size)
        value = evaluate(predicate, context)
        if isinstance(value, float):
            # A numeric predicate selects by position.
            if float(position) == value:
                kept.append(node)
        elif to_boolean(value):
            kept.append(node)
    return kept


def _matches_generic(predicate: ast.Expression, node: NodeLike) -> bool:
    """Generic single-node predicate test (fast-path fallback).

    Only reached for non-element context nodes under a fast-compiled
    predicate, which by construction is position-independent.
    """
    return to_boolean(evaluate(predicate, Context(node=node)))


# -- compiled predicates ------------------------------------------------------------
#
# Detection evaluates tens of thousands of predicates of the shape the
# query rewriter emits: conjunctions of ``child-path = 'literal'`` (and
# the occasional numeric comparison).  Interpreting that through the
# generic evaluator costs a Context allocation plus several dispatch
# layers per node; compiling each predicate once into a closure over the
# tree's child-tag indexes removes all of it.  Predicates that depend on
# position()/last()/functions, or use axes outside the plain child/
# attribute/text() chain, are left to the generic path (``None``).

_FAST_UNSET = object()

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def _fast_predicate(predicate: ast.Expression):
    fast = getattr(predicate, "_fast_pred", _FAST_UNSET)
    if fast is _FAST_UNSET:
        fast = _compile_fast(predicate)
        # AST nodes are frozen dataclasses; attach the compiled closure
        # out-of-band so every cached query compiles each predicate once.
        object.__setattr__(predicate, "_fast_pred", fast)
    return fast


def _compile_fast(predicate: ast.Expression):
    if isinstance(predicate, ast.BinaryOp):
        op = predicate.op
        if op in ("and", "or"):
            left = _compile_fast(predicate.left)
            right = _compile_fast(predicate.right)
            if left is None or right is None:
                return None
            if op == "and":
                return lambda element: left(element) and right(element)
            return lambda element: left(element) or right(element)
        if op in _FLIPPED:
            comparison = _compile_comparison(predicate.left, predicate.right,
                                             op)
            if comparison is None:
                comparison = _compile_comparison(predicate.right,
                                                 predicate.left, _FLIPPED[op])
            return comparison
        return None
    if isinstance(predicate, ast.LocationPath):
        collect = _compile_value_path(predicate)
        if collect is None:
            return None
        return lambda element: bool(collect(element))
    return None


def _compile_comparison(path_side: ast.Expression, atom_side: ast.Expression,
                        op: str):
    """Closure for ``path op atom`` (existential node-set comparison)."""
    if not isinstance(path_side, ast.LocationPath):
        return None
    collect = _compile_value_path(path_side)
    if collect is None:
        return None
    if isinstance(atom_side, ast.Literal):
        literal = atom_side.value
        if op == "=":
            return lambda element: literal in collect(element)
        if op == "!=":
            return lambda element: any(
                value != literal for value in collect(element))
        number = to_number(literal)
        return lambda element: any(
            _numeric_holds(op, to_number(value), number)
            for value in collect(element))
    if isinstance(atom_side, ast.Number):
        number = atom_side.value
        return lambda element: any(
            _numeric_holds(op, to_number(value), number)
            for value in collect(element))
    return None


def _numeric_holds(op: str, left: float, right: float) -> bool:
    if math.isnan(left) or math.isnan(right):
        return op == "!=" and not (math.isnan(left) and math.isnan(right))
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _compile_value_path(path: ast.LocationPath):
    """Closure Element -> list of string-values for a simple relative path.

    Supported: ``tag``, ``tag1/tag2``, optionally terminated by
    ``@name`` or ``text()`` — i.e. predicate-free child chains, exactly
    what the query rewriter generates.
    """
    if path.absolute or not path.steps:
        return None
    steps = path.steps
    tags: list[str] = []
    tail = steps[-1]
    for step in steps[:-1]:
        if (step.axis != ast.CHILD or step.predicates
                or not isinstance(step.test, ast.NameTest)
                or step.test.name == "*"):
            return None
        tags.append(step.test.name)
    if tail.predicates:
        return None
    if tail.axis == ast.CHILD and isinstance(tail.test, ast.NameTest) \
            and tail.test.name != "*":
        final_tag = tail.test.name

        def collect(element: Element) -> list[str]:
            values: list[str] = []
            for owner in _walk_tags(element, tags):
                for leaf in owner.children_by_tag(final_tag):
                    values.append(leaf.string_value())
            return values

        return collect
    if tail.axis == ast.ATTRIBUTE and isinstance(tail.test, ast.NameTest) \
            and tail.test.name != "*":
        attr_name = tail.test.name

        def collect_attr(element: Element) -> list[str]:
            values: list[str] = []
            for owner in _walk_tags(element, tags):
                value = owner.attributes.get(attr_name)
                if value is not None:
                    values.append(value)
            return values

        return collect_attr
    if tail.axis == ast.CHILD and isinstance(tail.test, ast.NodeTypeTest) \
            and tail.test.node_type == "text":

        def collect_text(element: Element) -> list[str]:
            values: list[str] = []
            for owner in _walk_tags(element, tags):
                for child in owner.children:
                    if isinstance(child, Text):
                        values.append(child.value)
            return values

        return collect_text
    return None


def _walk_tags(element: Element, tags: list[str]):
    """Elements reached from ``element`` through the child-tag chain."""
    current = [element]
    for tag in tags:
        scope: list[Element] = []
        for node in current:
            scope.extend(node.children_by_tag(tag))
        if not scope:
            return ()
        current = scope
    return current


# -- axes ------------------------------------------------------------


def _axis_candidates(step: ast.Step, node: NodeLike) -> Iterator[NodeLike]:
    axis = step.axis
    if axis == ast.CHILD:
        yield from _match_children(step.test, node)
    elif axis == ast.ATTRIBUTE:
        yield from _match_attributes(step.test, node)
    elif axis == ast.SELF:
        if _test_matches(step.test, node):
            yield node
    elif axis == ast.PARENT:
        parent = _parent_of(node)
        if parent is not None and _test_matches(step.test, parent):
            yield parent
    elif axis == ast.DESCENDANT_OR_SELF:
        test = step.test
        if isinstance(node, Element) and isinstance(test, ast.NameTest) \
                and test.name != "*":
            yield from node.descendants_by_tag(test.name)
        else:
            for candidate in _descendants_or_self(node):
                if _test_matches(test, candidate):
                    yield candidate
    elif axis == ast.DESCENDANT:
        test = step.test
        if isinstance(node, Element) and isinstance(test, ast.NameTest) \
                and test.name != "*":
            for candidate in node.descendants_by_tag(test.name):
                if candidate is not node:
                    yield candidate
        else:
            for candidate in _descendants_or_self(node):
                if candidate is node:
                    continue
                if _test_matches(test, candidate):
                    yield candidate
    elif axis == ast.ANCESTOR:
        if isinstance(node, (Node,)):
            for ancestor in node.ancestors():
                if _test_matches(step.test, ancestor):
                    yield ancestor
        elif isinstance(node, AttributeNode):
            current: Optional[Element] = node.owner
            while current is not None:
                if _test_matches(step.test, current):
                    yield current
                current = current.parent
    elif axis == ast.ANCESTOR_OR_SELF:
        yield from _axis_candidates(
            ast.Step(ast.SELF, step.test), node)
        yield from _axis_candidates(
            ast.Step(ast.ANCESTOR, step.test), node)
    elif axis == ast.FOLLOWING_SIBLING:
        yield from _siblings(step.test, node, forward=True)
    elif axis == ast.PRECEDING_SIBLING:
        yield from _siblings(step.test, node, forward=False)
    else:
        raise XPathTypeError(f"unsupported axis {axis!r}")


def _match_children(test: ast.Expression, node: NodeLike) -> Iterator[NodeLike]:
    if isinstance(node, AttributeNode):
        return
    if isinstance(node, Element):
        if isinstance(test, ast.NameTest) and test.name != "*":
            # Indexed lookup: only element children can match a name test.
            yield from node.children_by_tag(test.name)
            return
        for child in node.children:
            if _test_matches(test, child):
                yield child


def _match_attributes(test: ast.Expression, node: NodeLike) -> Iterator[NodeLike]:
    if not isinstance(node, Element):
        return
    if isinstance(test, ast.NameTest):
        if test.name == "*":
            for name in node.attributes:
                yield AttributeNode(node, name)
        elif test.name in node.attributes:
            yield AttributeNode(node, test.name)
    elif isinstance(test, ast.NodeTypeTest) and test.node_type == "node":
        for name in node.attributes:
            yield AttributeNode(node, name)


def _test_matches(test: ast.Expression, node: NodeLike) -> bool:
    if isinstance(test, ast.NameTest):
        if isinstance(node, Element):
            return test.matches(node.tag)
        if isinstance(node, AttributeNode):
            return test.matches(node.name)
        return False
    if isinstance(test, ast.NodeTypeTest):
        if test.node_type == "node":
            return True
        if test.node_type == "text":
            return isinstance(node, Text)
        if test.node_type == "comment":
            return isinstance(node, Comment)
    return False


def _descendants_or_self(node: NodeLike) -> Iterator[NodeLike]:
    if isinstance(node, AttributeNode):
        yield node
        return
    if isinstance(node, Element):
        yield from node.iter()
    else:
        yield node


def _siblings(test: ast.Expression, node: NodeLike,
              forward: bool) -> Iterator[NodeLike]:
    if isinstance(node, AttributeNode) or node.parent is None:
        return
    siblings = node.parent.children
    index = node.index_in_parent()
    candidates = siblings[index + 1:] if forward else reversed(siblings[:index])
    for sibling in candidates:
        if _test_matches(test, sibling):
            yield sibling


def _parent_of(node: NodeLike) -> Optional[Element]:
    if isinstance(node, AttributeNode):
        return node.owner
    return node.parent


def _document_root(node: NodeLike) -> Element:
    if isinstance(node, AttributeNode):
        node = node.owner
    top = node.root()
    if not isinstance(top, Element):
        raise XPathTypeError("context node is not attached to an element tree")
    return top


def _document_order(nodes: list[NodeLike]) -> list[NodeLike]:
    """Sort a merged node-set into document order."""
    if len(nodes) < 2:
        return nodes
    roots = {id(_document_root(n)) for n in nodes}
    if len(roots) > 1:
        # Nodes from different documents: keep first-seen order.
        return nodes
    root = _document_root(nodes[0])
    ranking = root.order_index()
    fallback = len(ranking)

    def order_key(node: NodeLike):
        if isinstance(node, AttributeNode):
            return ranking.get((id(node.owner), node.name), fallback)
        return ranking.get(id(node), fallback)

    return sorted(nodes, key=order_key)


# -- public helpers used by repro.xpath ------------------------------------------------------------


def context_for(target: Union[Document, NodeLike]) -> Context:
    """Build an evaluation context rooted at a document or node."""
    if isinstance(target, Document):
        return Context(node=target.root)
    return Context(node=target)
