"""Evaluator for the XPath 1.0 subset.

The evaluator walks the AST produced by :mod:`repro.xpath.parser` against
the tree model.  Node-sets are kept in document order (required for
positional predicates) and deduplicated after descendant axes.

The public entry points live in :mod:`repro.xpath` (``compile_xpath`` /
``select`` / ``select_strings``); this module contains the machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.xmlmodel.tree import Comment, Document, Element, Node, Text
from repro.xpath import ast, functions
from repro.xpath.errors import XPathTypeError
from repro.xpath.values import (
    AttributeNode,
    NodeLike,
    XPathValue,
    compare,
    is_node_set,
    to_boolean,
    to_number,
    unique_nodes,
)


@dataclass
class Context:
    """Evaluation context: the context node plus position/size.

    ``position`` and ``size`` are 1-based, per the XPath data model.
    """

    node: NodeLike
    position: int = 1
    size: int = 1

    def with_node(self, node: NodeLike, position: int, size: int) -> "Context":
        return Context(node=node, position=position, size=size)


def evaluate(expr: ast.Expression, context: Context) -> XPathValue:
    """Evaluate ``expr`` in ``context`` and return an XPath value."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.Negate):
        return -to_number(evaluate(expr.operand, context))
    if isinstance(expr, ast.BinaryOp):
        return _evaluate_binary(expr, context)
    if isinstance(expr, ast.FunctionCall):
        args = [evaluate(arg, context) for arg in expr.args]
        return functions.call(expr.name, context, args)
    if isinstance(expr, ast.LocationPath):
        return _evaluate_path(expr, context)
    if isinstance(expr, ast.FilterExpression):
        return _evaluate_filter(expr, context)
    raise XPathTypeError(f"cannot evaluate {type(expr).__name__}")


# -- operators ------------------------------------------------------------


def _evaluate_binary(expr: ast.BinaryOp, context: Context) -> XPathValue:
    op = expr.op
    if op == "or":
        return (to_boolean(evaluate(expr.left, context))
                or to_boolean(evaluate(expr.right, context)))
    if op == "and":
        return (to_boolean(evaluate(expr.left, context))
                and to_boolean(evaluate(expr.right, context)))
    left = evaluate(expr.left, context)
    right = evaluate(expr.right, context)
    if op in ("=", "!=", "<", "<=", ">", ">="):
        return compare(op, left, right)
    if op == "|":
        if not is_node_set(left) or not is_node_set(right):
            raise XPathTypeError("'|' requires node-set operands")
        merged = unique_nodes(list(left) + list(right))
        return _document_order(merged)
    left_num, right_num = to_number(left), to_number(right)
    if op == "+":
        return left_num + right_num
    if op == "-":
        return left_num - right_num
    if op == "*":
        return left_num * right_num
    if op == "div":
        if right_num == 0:
            if left_num == 0 or math.isnan(left_num):
                return math.nan
            return math.inf if left_num > 0 else -math.inf
        return left_num / right_num
    if op == "mod":
        if right_num == 0 or math.isnan(left_num) or math.isnan(right_num):
            return math.nan
        return math.fmod(left_num, right_num)
    raise XPathTypeError(f"unknown operator {op!r}")


# -- paths ------------------------------------------------------------


def _evaluate_path(path: ast.LocationPath, context: Context) -> list[NodeLike]:
    if path.absolute:
        root = _document_root(context.node)
        if not path.steps:
            return [root]
        nodes, remaining = _start_absolute(list(path.steps), root)
    else:
        nodes = [context.node]
        remaining = list(path.steps)
    for step in remaining:
        nodes = _evaluate_step(step, nodes)
    return nodes


def _is_anchor(step: ast.Step) -> bool:
    """True for the expansion of '//': descendant-or-self::node()."""
    return (
        step.axis == ast.DESCENDANT_OR_SELF
        and isinstance(step.test, ast.NodeTypeTest)
        and step.test.node_type == "node"
        and not step.predicates
    )


def _start_absolute(
    steps: list[ast.Step], root: Element
) -> tuple[list[NodeLike], list[ast.Step]]:
    """Consume the leading step(s) of an absolute path.

    An absolute path starts at the (implicit) document node, whose only
    element child is the root element.  The tree model has no document
    node object, so the leading axes are mapped directly:

    * ``/X``   -> the root element when it matches the test,
    * ``//X``  -> every descendant-or-self node of the root matching X
      (the anchor step is fused with the following child step so the
      root element itself is eligible, exactly as the spec's expansion
      through the document node implies),
    * descendant axes -> matching nodes among root and its descendants,
    * anything else -> evaluated with the root element as context.
    """
    first = steps[0]
    if _is_anchor(first) and len(steps) >= 2 and steps[1].axis == ast.CHILD:
        fused = steps[1]
        candidates: list[NodeLike] = [
            node for node in _descendants_or_self(root)
            if _test_matches(fused.test, node)
        ]
        for predicate in fused.predicates:
            candidates = _apply_predicate(candidates, predicate)
        return candidates, steps[2:]
    if first.axis == ast.CHILD:
        candidates = [root] if _test_matches(first.test, root) else []
    elif first.axis in (ast.DESCENDANT, ast.DESCENDANT_OR_SELF):
        candidates = [
            node for node in _descendants_or_self(root)
            if _test_matches(first.test, node)
        ]
    else:
        return _evaluate_step(first, [root]), steps[1:]
    for predicate in first.predicates:
        candidates = _apply_predicate(candidates, predicate)
    return candidates, steps[1:]


def _evaluate_filter(expr: ast.FilterExpression, context: Context) -> XPathValue:
    value = evaluate(expr.primary, context)
    if expr.predicates or expr.path is not None:
        if not is_node_set(value):
            raise XPathTypeError(
                "predicates/paths can only follow node-set expressions")
        nodes = value
        for predicate in expr.predicates:
            nodes = _apply_predicate(nodes, predicate)
        if expr.path is not None:
            for step in expr.path.steps:
                nodes = _evaluate_step(step, nodes)
        return nodes
    return value


def _evaluate_step(step: ast.Step, nodes: list[NodeLike]) -> list[NodeLike]:
    gathered: list[NodeLike] = []
    for node in nodes:
        gathered.extend(_axis_candidates(step, node))
    gathered = unique_nodes(gathered)
    for predicate in step.predicates:
        gathered = _apply_predicate(gathered, predicate)
    return gathered


def _apply_predicate(nodes: list[NodeLike],
                     predicate: ast.Expression) -> list[NodeLike]:
    size = len(nodes)
    kept: list[NodeLike] = []
    for position, node in enumerate(nodes, start=1):
        context = Context(node=node, position=position, size=size)
        value = evaluate(predicate, context)
        if isinstance(value, float):
            # A numeric predicate selects by position.
            if float(position) == value:
                kept.append(node)
        elif to_boolean(value):
            kept.append(node)
    return kept


# -- axes ------------------------------------------------------------


def _axis_candidates(step: ast.Step, node: NodeLike) -> Iterator[NodeLike]:
    axis = step.axis
    if axis == ast.CHILD:
        yield from _match_children(step.test, node)
    elif axis == ast.ATTRIBUTE:
        yield from _match_attributes(step.test, node)
    elif axis == ast.SELF:
        if _test_matches(step.test, node):
            yield node
    elif axis == ast.PARENT:
        parent = _parent_of(node)
        if parent is not None and _test_matches(step.test, parent):
            yield parent
    elif axis == ast.DESCENDANT_OR_SELF:
        for candidate in _descendants_or_self(node):
            if _test_matches(step.test, candidate):
                yield candidate
    elif axis == ast.DESCENDANT:
        for candidate in _descendants_or_self(node):
            if candidate is node:
                continue
            if _test_matches(step.test, candidate):
                yield candidate
    elif axis == ast.ANCESTOR:
        if isinstance(node, (Node,)):
            for ancestor in node.ancestors():
                if _test_matches(step.test, ancestor):
                    yield ancestor
        elif isinstance(node, AttributeNode):
            current: Optional[Element] = node.owner
            while current is not None:
                if _test_matches(step.test, current):
                    yield current
                current = current.parent
    elif axis == ast.ANCESTOR_OR_SELF:
        yield from _axis_candidates(
            ast.Step(ast.SELF, step.test), node)
        yield from _axis_candidates(
            ast.Step(ast.ANCESTOR, step.test), node)
    elif axis == ast.FOLLOWING_SIBLING:
        yield from _siblings(step.test, node, forward=True)
    elif axis == ast.PRECEDING_SIBLING:
        yield from _siblings(step.test, node, forward=False)
    else:
        raise XPathTypeError(f"unsupported axis {axis!r}")


def _match_children(test: ast.Expression, node: NodeLike) -> Iterator[NodeLike]:
    if isinstance(node, AttributeNode):
        return
    if isinstance(node, Element):
        for child in node.children:
            if _test_matches(test, child):
                yield child


def _match_attributes(test: ast.Expression, node: NodeLike) -> Iterator[NodeLike]:
    if not isinstance(node, Element):
        return
    if isinstance(test, ast.NameTest):
        if test.name == "*":
            for name in node.attributes:
                yield AttributeNode(node, name)
        elif test.name in node.attributes:
            yield AttributeNode(node, test.name)
    elif isinstance(test, ast.NodeTypeTest) and test.node_type == "node":
        for name in node.attributes:
            yield AttributeNode(node, name)


def _test_matches(test: ast.Expression, node: NodeLike) -> bool:
    if isinstance(test, ast.NameTest):
        if isinstance(node, Element):
            return test.matches(node.tag)
        if isinstance(node, AttributeNode):
            return test.matches(node.name)
        return False
    if isinstance(test, ast.NodeTypeTest):
        if test.node_type == "node":
            return True
        if test.node_type == "text":
            return isinstance(node, Text)
        if test.node_type == "comment":
            return isinstance(node, Comment)
    return False


def _descendants_or_self(node: NodeLike) -> Iterator[NodeLike]:
    if isinstance(node, AttributeNode):
        yield node
        return
    if isinstance(node, Element):
        yield from node.iter()
    else:
        yield node


def _siblings(test: ast.Expression, node: NodeLike,
              forward: bool) -> Iterator[NodeLike]:
    if isinstance(node, AttributeNode) or node.parent is None:
        return
    siblings = node.parent.children
    index = node.index_in_parent()
    candidates = siblings[index + 1:] if forward else reversed(siblings[:index])
    for sibling in candidates:
        if _test_matches(test, sibling):
            yield sibling


def _parent_of(node: NodeLike) -> Optional[Element]:
    if isinstance(node, AttributeNode):
        return node.owner
    return node.parent


def _document_root(node: NodeLike) -> Element:
    if isinstance(node, AttributeNode):
        node = node.owner
    top = node.root()
    if not isinstance(top, Element):
        raise XPathTypeError("context node is not attached to an element tree")
    return top


def _document_order(nodes: list[NodeLike]) -> list[NodeLike]:
    """Sort a merged node-set into document order."""
    if len(nodes) < 2:
        return nodes
    roots = {id(_document_root(n)) for n in nodes}
    if len(roots) > 1:
        # Nodes from different documents: keep first-seen order.
        return nodes
    ranking: dict[int, int] = {}
    root = _document_root(nodes[0])
    rank = 0
    for node in root.iter():
        ranking[id(node)] = rank
        rank += 1
        if isinstance(node, Element):
            for name in node.attributes:
                ranking[(id(node), name)] = rank  # type: ignore[index]
                rank += 1

    def order_key(node: NodeLike):
        if isinstance(node, AttributeNode):
            return ranking.get((id(node.owner), node.name), rank)
        return ranking.get(id(node), rank)

    return sorted(nodes, key=order_key)


# -- public helpers used by repro.xpath ------------------------------------------------------------


def context_for(target: Union[Document, NodeLike]) -> Context:
    """Build an evaluation context rooted at a document or node."""
    if isinstance(target, Document):
        return Context(node=target.root)
    return Context(node=target)
