"""Agrawal–Kiernan-style baseline: physical-path identification.

The relational watermarking scheme the paper cites ([1], VLDB 2002)
identifies a marked cell by its primary key — which, transplanted
naively to XML (where the adversary controls the organisation), becomes
"identify the marked node by its physical path", e.g.
``/db/book[17]/year[1]``.

The scheme shares WmXML's machinery (keyed selection, plug-ins, voting)
but stores *concrete positional XPath* in its record.  Consequences the
experiments demonstrate:

* sibling reordering shifts positions — detection reads the wrong nodes;
* schema reorganisation invalidates every stored path — detection reads
  nothing;
* FD duplicates get independent identities — redundancy unification
  erases roughly half the duplicate marks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import BaselineWatermarker
from repro.core.algorithms import create_algorithm
from repro.core.decoder import DetectionResult
from repro.core.encoder import read_node_value, write_node_value
from repro.core.identity import CarrierSpec
from repro.core.watermark import VoteTally, Watermark
from repro.semantics.shape import DocumentShape
from repro.xmlmodel.tree import Document
from repro.xpath import XPathError, compile_xpath
from repro.xpath.values import AttributeNode


@dataclass
class AKRecord:
    """Stored queries: concrete positional paths, one per marked node."""

    nbits: int
    gamma: int
    queries: list[tuple[str, int, str, tuple]] = field(default_factory=list)
    # each entry: (physical_path, bit_index, algorithm, params)


class AKWatermarker(BaselineWatermarker):
    """Physical-path watermarker over the same carrier fields as WmXML."""

    name = "agrawal-kiernan"

    def __init__(self, secret_key, shape: DocumentShape,
                 carriers: list[CarrierSpec], gamma: int = 4,
                 alpha: float = 1e-3) -> None:
        super().__init__(secret_key, gamma, alpha)
        self.shape = shape
        self.carriers = list(carriers)

    # -- embedding ------------------------------------------------------------

    def embed(self, document: Document,
              watermark: Watermark) -> tuple[Document, AKRecord]:
        marked = document.copy()
        record = AKRecord(nbits=len(watermark), gamma=self.gamma)
        rows = self.shape.shred(marked)
        seen: set = set()
        for row in rows:
            for carrier in self.carriers:
                node = row.nodes.get(carrier.field)
                if node is None:
                    continue
                key = node if isinstance(node, AttributeNode) else id(node)
                if key in seen:
                    continue
                seen.add(key)
                path = (node.path() if isinstance(node, AttributeNode)
                        else _physical_path(node))
                if not self.prf.selects(path, self.gamma):
                    continue
                bit_index = self.prf.bit_index(path, len(watermark))
                algorithm = create_algorithm(carrier.algorithm,
                                             carrier.param_map)
                value = read_node_value(node)
                if not algorithm.applicable(value):
                    continue
                bit = watermark.bits[bit_index]
                new_value = algorithm.embed(value, bit, self.prf, path)
                write_node_value(node, new_value)
                record.queries.append(
                    (path, bit_index, carrier.algorithm, carrier.params))
        return marked, record

    # -- detection ------------------------------------------------------------

    def detect(self, document: Document, record: AKRecord,
               expected: Watermark) -> DetectionResult:
        tally = VoteTally()
        answered = 0
        rejected = 0
        for path, bit_index, algorithm_name, params in record.queries:
            # Authenticate the stored entry against the key (see the
            # WmXML decoder): the derivation is deterministic, so any
            # rejection proves the record/key pair is bogus.
            if (not self.prf.selects(path, record.gamma)
                    or self.prf.bit_index(path, record.nbits) != bit_index):
                rejected += 1
                continue
            algorithm = create_algorithm(
                algorithm_name, {name: value for name, value in params})
            try:
                nodes = compile_xpath(path).select(document)
            except XPathError:
                nodes = []
            got_vote = False
            for node in nodes:
                value = read_node_value(node)
                bit = algorithm.extract(value, self.prf, path)
                if bit is None:
                    continue
                tally.add(bit_index, bit)
                got_vote = True
            if got_vote:
                answered += 1
        return self._result(tally, len(record.queries), answered,
                            expected, record.nbits,
                            queries_rejected=rejected)


def _physical_path(node) -> str:
    """Positional path for element and text nodes."""
    from repro.xmlmodel.tree import Element, Text

    if isinstance(node, Element):
        return node.path()
    if isinstance(node, Text) and node.parent is not None:
        return f"{node.parent.path()}/text()"
    raise TypeError(f"cannot build a physical path for {type(node).__name__}")
