"""Baseline watermarkers the paper compares against.

* :class:`~repro.baselines.agrawal_kiernan.AKWatermarker` — the
  relational state of the art ([1]) transplanted to XML: physical-path
  identification;
* :class:`~repro.baselines.sion.SionWatermarker` — the prior
  semi-structured scheme ([5]): structural content labels.

Both share WmXML's selection/embedding/voting machinery, so experiment
outcomes isolate the identification mechanism — the paper's actual
contribution.
"""

from repro.baselines.agrawal_kiernan import AKRecord, AKWatermarker
from repro.baselines.base import BaselineWatermarker
from repro.baselines.sion import SionRecord, SionSlot, SionWatermarker

__all__ = [
    "AKRecord",
    "AKWatermarker",
    "BaselineWatermarker",
    "SionRecord",
    "SionSlot",
    "SionWatermarker",
]
