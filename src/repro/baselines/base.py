"""Common interface for the comparison watermarkers.

The paper positions WmXML against the relational state of the art
(Agrawal–Kiernan [1]) and the only prior semi-structured scheme (Sion et
al. [5]).  Both are implemented here behind the same embed/detect
interface as WmXML so every experiment can run all three on identical
documents and attacks.

A baseline watermarker differs from WmXML only in **how carrier
instances are identified**:

* WmXML — semantic identity from keys/FDs + logical queries (rewritable),
* Agrawal–Kiernan style — physical paths (positions),
* Sion style — structural content labels (position-free but
  organisation-bound).

Everything else — the keyed 1-in-gamma selection, bit-index assignment,
per-type plug-ins, majority voting, binomial significance — is shared,
which makes the comparison a controlled ablation of the identification
mechanism (exactly the paper's §2.3 argument).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Union

from repro.core.crypto import KeyedPRF
from repro.core.decoder import DetectionResult
from repro.core.watermark import Watermark, binomial_pvalue
from repro.xmlmodel.tree import Document


class BaselineWatermarker(ABC):
    """Embed/detect interface shared by the comparison schemes."""

    #: Scheme name used in experiment tables.
    name: str = ""

    def __init__(self, secret_key: Union[str, bytes],
                 gamma: int = 4, alpha: float = 1e-3) -> None:
        self.prf = KeyedPRF(secret_key)
        self.gamma = gamma
        self.alpha = alpha

    @abstractmethod
    def embed(self, document: Document, watermark: Watermark):
        """Return (marked document, detection record)."""

    @abstractmethod
    def detect(self, document: Document, record,
               expected: Watermark) -> DetectionResult:
        """Verify ``expected`` against a suspected document."""

    def _result(self, tally, record_queries: int, queries_answered: int,
                expected: Watermark, nbits: int,
                queries_rejected: int = 0) -> DetectionResult:
        matching, total = tally.matching_votes(expected)
        p_value = binomial_pvalue(matching, total)
        return DetectionResult(
            votes_total=total,
            votes_matching=matching,
            queries_total=record_queries,
            queries_answered=queries_answered,
            p_value=p_value,
            detected=queries_rejected == 0 and p_value < self.alpha,
            alpha=self.alpha,
            recovered_bits=tally.reconstruct(nbits),
            recovered_fraction=tally.recovered_fraction(nbits),
            queries_rejected=queries_rejected,
        )
