"""Sion-et-al-style baseline: structural content labels.

The prior semi-structured scheme the paper compares against ([5], IWDW
2003) labels nodes through the *structure and content around them*
rather than through positions.  Our faithful-in-spirit instantiation
labels a carrier node by:

* its own tag (or attribute name), and
* the order-insensitive multiset of its entity's non-carrier leaf
  values (carrier values are excluded so embedding does not move the
  label).

This survives sibling reordering (labels ignore order) and value noise
on non-carrier siblings only partially — and, as the paper argues,
it fails against:

* **semantic reorganisation** — restructuring relocates the context a
  label hashes, so recomputed labels match nothing;
* **redundancy removal** — duplicates live in different contexts, get
  independent labels and bits, and unification erases the disagreeing
  half.

Detection re-derives labels by scanning the suspected document (the
scheme stores no queries — that is its design), so it needs to know
which (tag/attribute, entity tag) slots were used.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.base import BaselineWatermarker
from repro.core.algorithms import create_algorithm
from repro.core.decoder import DetectionResult
from repro.core.encoder import read_node_value, write_node_value
from repro.core.watermark import VoteTally, Watermark
from repro.xmlmodel.tree import Document, Element
from repro.xpath.values import AttributeNode


@dataclass(frozen=True)
class SionSlot:
    """One carrier slot: where bits live inside each entity.

    ``kind`` is 'leaf' (child element text) or 'attribute'.
    """

    entity_tag: str
    kind: str
    name: str
    algorithm: str
    params: tuple = ()


@dataclass
class SionRecord:
    """The scheme's stored state: slots only — no per-node queries."""

    nbits: int
    gamma: int
    slots: list[SionSlot] = field(default_factory=list)


class SionWatermarker(BaselineWatermarker):
    """Structural-label watermarker."""

    name = "sion-labeling"

    def __init__(self, secret_key, slots: list[SionSlot],
                 gamma: int = 4, alpha: float = 1e-3) -> None:
        super().__init__(secret_key, gamma, alpha)
        self.slots = list(slots)

    # -- labels ------------------------------------------------------------

    def _label(self, entity: Element, slot: SionSlot) -> str:
        """Order-insensitive content label of a carrier instance."""
        carrier_names = {
            (other.kind, other.name)
            for other in self.slots if other.entity_tag == slot.entity_tag
        }
        pieces: list[str] = []
        for child in entity.child_elements():
            if ("leaf", child.tag) in carrier_names:
                continue
            if child.is_leaf():
                pieces.append(f"E:{child.tag}={child.text.strip()}")
        for name in entity.attributes:
            if ("attribute", name) in carrier_names:
                continue
            pieces.append(f"A:{name}={entity.attributes[name]}")
        digest = hashlib.sha256(
            "\x1f".join(sorted(pieces)).encode("utf-8")).hexdigest()
        return f"{slot.entity_tag}/{slot.kind}:{slot.name}/{digest}"

    def _instances(self, document: Document, slot: SionSlot):
        """(label, node) for every instance of a slot in the document."""
        for entity in document.iter_elements(slot.entity_tag):
            if slot.kind == "leaf":
                for child in entity.child_elements(slot.name):
                    yield self._label(entity, slot), child
            elif slot.name in entity.attributes:
                yield self._label(entity, slot), AttributeNode(
                    entity, slot.name)

    # -- embedding ------------------------------------------------------------

    def embed(self, document: Document,
              watermark: Watermark) -> tuple[Document, SionRecord]:
        marked = document.copy()
        record = SionRecord(nbits=len(watermark), gamma=self.gamma,
                            slots=list(self.slots))
        for slot in self.slots:
            algorithm = create_algorithm(
                slot.algorithm, {name: value for name, value in slot.params})
            for label, node in self._instances(marked, slot):
                if not self.prf.selects(label, self.gamma):
                    continue
                value = read_node_value(node)
                if not algorithm.applicable(value):
                    continue
                bit_index = self.prf.bit_index(label, len(watermark))
                bit = watermark.bits[bit_index]
                write_node_value(
                    node, algorithm.embed(value, bit, self.prf, label))
        return marked, record

    # -- detection ------------------------------------------------------------

    def detect(self, document: Document, record: SionRecord,
               expected: Watermark) -> DetectionResult:
        tally = VoteTally()
        candidates = 0
        answered = 0
        for slot in record.slots:
            algorithm = create_algorithm(
                slot.algorithm, {name: value for name, value in slot.params})
            for label, node in self._instances(document, slot):
                candidates += 1
                if not self.prf.selects(label, self.gamma):
                    continue
                value = read_node_value(node)
                bit = algorithm.extract(value, self.prf, label)
                if bit is None:
                    continue
                bit_index = self.prf.bit_index(label, record.nbits)
                tally.add(bit_index, bit)
                answered += 1
        return self._result(tally, candidates, answered, expected,
                            record.nbits)
