"""The ``wmxml`` command-line tool — the demo system's front door.

Mirrors the workflow of the paper's demonstration (§4):

* ``wmxml generate`` — synthesise a dataset (bibliography / jobs /
  library) to an XML file;
* ``wmxml embed`` — watermark a document with a secret key and a
  message, writing the marked document and the query-set record Q;
* ``wmxml detect`` — verify a watermark in a suspected document, with
  optional query rewriting for a reorganised organisation;
* ``wmxml attack`` — apply one of the §4 attacks to a document;
* ``wmxml usability`` — score a document's usability against the
  original via the profile's query templates;
* ``wmxml discover`` — mine candidate keys and FDs from a document;
* ``wmxml scheme`` — export a profile's deployment as a declarative
  ``scheme.json`` artefact (or describe one);
* ``wmxml experiment`` — run one of the E1-E10 experiments.

Dataset *profiles* bundle the shapes, schemes, and templates so the CLI
stays declarative; every embedding/detecting subcommand also accepts
``--scheme scheme.json`` to run a deployment from its declarative
artefact instead of a built-in profile.  All watermarking runs through
the :mod:`repro.api` facade — the CLI constructs no encoder or decoder
of its own.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from dataclasses import replace
from typing import Optional

from repro.api import (
    NodeDeletionAttack,
    NodeInsertionAttack,
    RedundancyUnificationAttack,
    ReductionAttack,
    ReorganizationAttack,
    SiblingShuffleAttack,
    UsabilityBaseline,
    ValueAlterationAttack,
    WatermarkRecord,
    WatermarkRegistry,
    WatermarkingScheme,
    WmXMLError,
    WmXMLSystem,
)
from repro.core.crypto import KeyedPRF
from repro.datasets import bibliography, jobs, library
from repro.errors import error_payload
from repro.harness import EXPERIMENTS, ExperimentConfig
from repro.perf import StageTimer, ThroughputReporter, use_timer
from repro.perf import bench as perf_bench
from repro.registry import RegistryUnavailableError
from repro.semantics import (
    discover_fds,
    discover_keys,
    infer_schema,
    parse_dtd,
    render_dtd,
    validate,
)
from repro.xmlmodel import parse_file, write_file


class Profile:
    """A dataset profile: shapes, scheme factory, generator."""

    def __init__(self, name: str, module, shapes: dict,
                 config_factory=None) -> None:
        self.name = name
        self.module = module
        self.shapes = shapes
        self._config_factory = config_factory

    def generate(self, size: int, seed: int):
        """Synthesise a dataset document of ``size`` entities."""
        return self.module.generate_document(
            self._config_factory(size, seed))

    def shape(self, name: Optional[str]):
        if name is None:
            return next(iter(self.shapes.values()))
        try:
            return self.shapes[name]
        except KeyError:
            raise SystemExit(
                f"unknown shape {name!r} for profile {self.name!r}; "
                f"choices: {sorted(self.shapes)}")


PROFILES = {
    "bibliography": Profile("bibliography", bibliography, {
        "book-centric": bibliography.book_shape(),
        "publisher-centric": bibliography.publisher_shape(),
        "editor-centric": bibliography.editor_shape(),
    }, lambda size, seed: bibliography.BibliographyConfig(
        books=size, seed=seed)),
    "jobs": Profile("jobs", jobs, {
        "job-listing": jobs.listing_shape(),
        "jobs-by-company": jobs.by_company_shape(),
        "jobs-by-city": jobs.by_city_shape(),
    }, lambda size, seed: jobs.JobsConfig(jobs=size, seed=seed)),
    "library": Profile("library", library, {
        "library-catalogue": library.catalogue_shape(),
        "library-by-category": library.by_category_shape(),
    }, lambda size, seed: library.LibraryConfig(items=size, seed=seed)),
}


def _profile(name: str) -> Profile:
    try:
        return PROFILES[name]
    except KeyError:
        raise SystemExit(
            f"unknown profile {name!r}; choices: {sorted(PROFILES)}")


def _scheme_for(args: argparse.Namespace, profile: Profile,
                gamma: Optional[int] = None) -> WatermarkingScheme:
    """The deployment for this invocation.

    ``--scheme scheme.json`` wins (the artefact is authoritative,
    including its gamma); otherwise the profile's default scheme with
    the requested gamma.
    """
    path = getattr(args, "scheme_file", None)
    if path:
        try:
            return WatermarkingScheme.load(path)
        except OSError as error:
            raise SystemExit(f"cannot read scheme {path!r}: {error}")
        except WmXMLError as error:
            raise SystemExit(f"bad scheme {path!r}: {error}")
    if gamma is not None:
        return profile.module.default_scheme(gamma=gamma)
    return profile.module.default_scheme()


def _registry_for(args: argparse.Namespace) -> Optional[WatermarkRegistry]:
    """The SQLite registry named by ``--registry``, or None without it.

    Opened *without* the automatic crash-recovery pass: CLI inspection
    commands (``ledger verify``, ``records``) must report a torn
    database, not silently repair it.  The daemon (``build_service``)
    and ``wmxml ledger recover`` run recovery explicitly.
    """
    path = getattr(args, "registry", None)
    if not path:
        return None
    try:
        return WatermarkRegistry.open(path, recover=False)
    except WmXMLError as error:
        raise SystemExit(f"cannot open registry {path!r}: {error}")


def _registry_required(args: argparse.Namespace) -> WatermarkRegistry:
    registry = _registry_for(args)
    if registry is None:
        raise SystemExit("--registry path.db is required")
    return registry


# -- subcommand handlers ------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    doc = profile.generate(args.size, args.seed)
    write_file(args.output, doc)
    print(f"wrote {args.profile} dataset ({args.size} entities) "
          f"to {args.output}")
    return 0


def _batch_target(path: str, kind: str, count: int) -> None:
    """Ensure ``path`` is a directory when a batch writes into it."""
    if os.path.exists(path) and not os.path.isdir(path):
        raise SystemExit(
            f"--{kind} must name a directory when embedding {count} "
            f"inputs (got existing file {path!r})")
    os.makedirs(path, exist_ok=True)


def cmd_embed(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    scheme = _scheme_for(args, profile, gamma=args.gamma)
    if not args.message and not args.recipient:
        raise SystemExit("--message is required (or issue a fingerprinted "
                         "copy with --recipient)")
    if not args.record and not args.registry:
        raise SystemExit("--record is required without --registry "
                         "(otherwise the query set Q would be lost and "
                         "the mark undetectable)")
    system = WmXMLSystem(args.key, registry=_registry_for(args),
                         issuer=args.issuer)
    if len(args.input) > 1:
        return _embed_batch(args, scheme, system)
    timer = StageTimer()
    with use_timer(timer):
        with timer.stage("parse"):
            document = parse_file(args.input[0], strip_whitespace=True)
        result = system.embed(scheme, document, args.message,
                              recipient=args.recipient)
        with timer.stage("write"):
            write_file(args.output, result.document)
            if args.record:
                result.record.save(args.record)
    if args.profile_stages:
        print(timer.render("embed pipeline stages"))
    stats = result.stats
    issued = (f" (issued to {args.recipient!r} under their derived key)"
              if args.recipient else "")
    print(f"embedded {result.record.nbits}-bit watermark{issued}: "
          f"{stats.selected_groups}/{stats.capacity_groups} groups "
          f"selected (gamma={scheme.gamma}), "
          f"{stats.nodes_modified} nodes perturbed")
    print(f"marked document: {args.output}")
    if args.record:
        print(f"query set Q:     {args.record}  (keep with your secret key)")
    if system.registry is not None:
        print(f"registry:        {args.registry} "
              f"({system.registry.count()} records)")
    return 0


def _embed_batch(args: argparse.Namespace, scheme: WatermarkingScheme,
                 system: WmXMLSystem) -> int:
    """Embed a fleet of documents; ``--output``/``--record`` are dirs.

    The batch runs through the facade's fused engine (raw XML in,
    marked XML out), sharded over ``--processes`` workers when asked —
    each input gets its own marked file and query-set record, named
    after the input's basename.
    """
    _batch_target(args.output, "output", len(args.input))
    if args.record:
        _batch_target(args.record, "record", len(args.input))
    stems = [os.path.splitext(os.path.basename(path))[0]
             for path in args.input]
    clashes = sorted({stem for stem in stems if stems.count(stem) > 1})
    if clashes:
        # Outputs are basename-keyed; two inputs sharing a basename
        # would silently overwrite each other's marked copy and record.
        raise SystemExit(
            f"duplicate input basenames {clashes!r}: batch outputs are "
            "named after input basenames, so these would overwrite each "
            "other — rename the inputs or embed them in separate runs")
    texts = []
    for path in args.input:
        with open(path, "r", encoding="utf-8") as handle:
            texts.append(handle.read())
    results = system.embed_many(scheme, texts, args.message,
                                processes=args.processes, output="xml",
                                recipient=args.recipient)
    for stem, result in zip(stems, results):
        marked_path = os.path.join(args.output, f"{stem}.xml")
        with open(marked_path, "w", encoding="utf-8") as handle:
            handle.write(result.xml)
        if args.record:
            result.record.save(
                os.path.join(args.record, f"{stem}.record.json"))
    workers = (f", {args.processes} workers"
               if args.processes and args.processes > 1 else "")
    print(f"embedded {results[0].record.nbits}-bit watermark into "
          f"{len(results)} documents (gamma={scheme.gamma}{workers})")
    print(f"marked documents: {args.output}/")
    if args.record:
        print(f"query sets Q:     {args.record}/  "
              "(keep with your secret key)")
    if system.registry is not None:
        print(f"registry:         {args.registry} "
              f"({system.registry.count()} records)")
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    """Detect, mapping any WmXML error to its stable code.

    A failure (malformed record, bad XML, unknown algorithm...) prints
    the machine-readable code and — when ``--result`` was given —
    writes the same error payload the service would put in its
    envelope, so scripted callers branch on ``error.code`` instead of
    parsing prose.
    """
    try:
        return _run_detect(args)
    except WmXMLError as error:
        payload = error_payload(error)
        print(f"error [{payload['code']}]: {error}", file=sys.stderr)
        if args.result:
            with open(args.result, "w", encoding="utf-8") as handle:
                json.dump({"error": payload}, handle, indent=2)
                handle.write("\n")
            print(f"error result: {args.result}", file=sys.stderr)
        return 2


def _run_detect(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    # Detection itself consumes only the record, the key, and the
    # document's current shape; the scheme here just anchors the
    # facade's pipeline (and, with --scheme, supplies the default
    # shape for rewriting).
    scheme = _scheme_for(args, profile)
    if args.shape:
        shape = profile.shape(args.shape)
    elif getattr(args, "scheme_file", None):
        shape = scheme.shape
    else:
        shape = profile.shape(None)
    system = WmXMLSystem(args.key, alpha=args.alpha,
                         registry=_registry_for(args))
    strategy = "indexed" if args.indexed else args.strategy
    if args.recipient:
        return _detect_recorded(args, scheme, system, shape, strategy)
    if not args.record:
        raise SystemExit("--record is required (or look one up with "
                         "--recipient and --registry)")
    record = WatermarkRecord.load(args.record)
    if len(args.input) > 1:
        return _detect_batch(args, scheme, system, record, shape, strategy)
    timer = StageTimer()
    with use_timer(timer):
        with timer.stage("parse"):
            document = parse_file(args.input[0], strip_whitespace=True)
        outcome = system.detect(scheme, document, record,
                                expected=args.message or None,
                                shape=shape, strategy=strategy)
    if args.profile_stages:
        print(timer.render("detect pipeline stages"))
    print(outcome)
    if outcome.recovered_message:
        print(f"recovered message: {outcome.recovered_message!r}")
    else:
        print(f"no message decoded ({outcome.message_status})")
    if outcome.queries_rejected:
        print(f"warning: {outcome.queries_rejected} stored queries failed "
              "key authentication")
    if args.result:
        outcome.save(args.result)
        print(f"detection result: {args.result}")
    return 0 if outcome.detected else 1


def _detect_recorded(args: argparse.Namespace, scheme: WatermarkingScheme,
                     system: WmXMLSystem, shape, strategy: str) -> int:
    """Detect against the registry's persisted record for a recipient.

    No ``--record`` file needed: the newest ``wmxml-registry-record-v1``
    for ``--recipient`` under this deployment supplies the query set,
    and the detection key (system or derived) follows the record's
    keying mode.
    """
    outcomes = []
    for path in args.input:
        document = parse_file(path, strip_whitespace=True)
        outcomes.append(system.detect_recorded(
            scheme, document, args.recipient, shape=shape,
            strategy=strategy))
    detected = 0
    for path, outcome in zip(args.input, outcomes):
        print(f"{path}: {outcome}")
        detected += bool(outcome.detected)
    if len(outcomes) > 1:
        print(f"detected in {detected}/{len(outcomes)} documents")
    if args.result:
        if len(outcomes) == 1:
            outcomes[0].save(args.result)
        else:
            with open(args.result, "w", encoding="utf-8") as handle:
                json.dump({path: outcome.to_dict()
                           for path, outcome in zip(args.input, outcomes)},
                          handle, indent=2)
                handle.write("\n")
        print(f"detection result: {args.result}")
    return 0 if detected == len(outcomes) else 1


def _detect_batch(args: argparse.Namespace, scheme: WatermarkingScheme,
                  system: WmXMLSystem, record: WatermarkRecord,
                  shape, strategy: str) -> int:
    """Check many suspected copies against one query-set record.

    The piracy-hunting batch: every input is judged by the same record,
    expectation and strategy, sharded over ``--processes`` workers when
    asked.  ``--result`` saves a JSON object mapping each input path to
    its versioned detection verdict.  Exit status is 0 only when
    *every* copy is detected.
    """
    texts = []
    for path in args.input:
        with open(path, "r", encoding="utf-8") as handle:
            texts.append(handle.read())
    timer = StageTimer()
    with use_timer(timer):
        with timer.stage("detect batch"):
            outcomes = system.detect_many(
                scheme, [(text, record) for text in texts],
                expected=args.message or None, shape=shape,
                strategy=strategy, processes=args.processes)
    if args.profile_stages:
        print(timer.render("batch detect stages"))
    detected = 0
    for path, outcome in zip(args.input, outcomes):
        print(f"{path}: {outcome}")
        detected += bool(outcome.detected)
    print(f"detected in {detected}/{len(outcomes)} documents")
    if args.result:
        with open(args.result, "w", encoding="utf-8") as handle:
            json.dump({path: outcome.to_dict()
                       for path, outcome in zip(args.input, outcomes)},
                      handle, indent=2)
            handle.write("\n")
        print(f"detection results: {args.result}")
    return 0 if detected == len(outcomes) else 1


def cmd_attack(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    document = parse_file(args.input, strip_whitespace=True)
    if args.kind == "alter":
        attack = ValueAlterationAttack(args.rate, seed=args.seed)
    elif args.kind == "delete":
        attack = NodeDeletionAttack(args.rate, seed=args.seed)
    elif args.kind == "insert":
        attack = NodeInsertionAttack(args.rate, seed=args.seed)
    elif args.kind == "reduce":
        attack = ReductionAttack(args.rate, seed=args.seed)
    elif args.kind == "shuffle":
        attack = SiblingShuffleAttack(seed=args.seed)
    elif args.kind == "reorganize":
        if getattr(args, "scheme_file", None) and not args.shape:
            source = _scheme_for(args, profile).shape
        else:
            source = profile.shape(args.shape)
        target = profile.shape(args.to_shape)
        attack = ReorganizationAttack(source, target)
    elif args.kind == "unify":
        fds = (profile.module.semantic_fds()
               if hasattr(profile.module, "semantic_fds")
               else [profile.module.semantic_fd()])
        attack = RedundancyUnificationAttack(fds[0], seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown attack {args.kind!r}")
    report = attack.apply(document)
    write_file(args.output, report.document)
    print(report)
    print(f"attacked document: {args.output}")
    return 0


def cmd_usability(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    if getattr(args, "scheme_file", None):
        scheme = _scheme_for(args, profile)
        original_shape = (profile.shape(args.shape) if args.shape
                          else scheme.shape)
        templates = scheme.templates
    else:
        original_shape = profile.shape(args.shape)
        templates = profile.module.usability_templates()
    current_shape = (profile.shape(args.current_shape)
                     if args.current_shape else original_shape)
    original = parse_file(args.original, strip_whitespace=True)
    suspected = parse_file(args.input, strip_whitespace=True)
    baseline = UsabilityBaseline.snapshot(original, original_shape,
                                          templates)
    report = baseline.evaluate(suspected, current_shape)
    print(report)
    for score in report.per_template:
        print(f"  {score.template}: strict={score.strict:.3f} "
              f"jaccard={score.jaccard:.3f} ({score.queries} queries)")
    print("usability destroyed" if report.destroyed()
          else "usability preserved")
    return 0


def cmd_discover(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    shape = profile.shape(args.shape)
    document = parse_file(args.input, strip_whitespace=True)
    rows = shape.shred(document)
    fields = list(shape.field_names)
    print(f"shredded {len(rows)} rows with fields: {', '.join(fields)}")
    print("\ncandidate keys:")
    for key in discover_keys(rows, fields):
        print(f"  {key}")
    print("\ncandidate functional dependencies:")
    for fd in discover_fds(rows, fields):
        print(f"  {fd}")
    return 0


def cmd_schema(args: argparse.Namespace) -> int:
    document = parse_file(args.input, strip_whitespace=True)
    if args.validate_dtd:
        with open(args.validate_dtd, "r", encoding="utf-8") as handle:
            schema = parse_dtd(handle.read())
        violations = validate(schema, document)
        if violations:
            print(f"{len(violations)} violation(s):")
            for violation in violations[:25]:
                print(f"  {violation}")
            return 1
        print("document is valid against the DTD")
        return 0
    schema = infer_schema(document)
    dtd_text = render_dtd(schema)
    print(dtd_text, end="")
    if args.dtd:
        with open(args.dtd, "w", encoding="utf-8") as handle:
            handle.write(dtd_text)
        print(f"\nwrote {args.dtd}")
    return 0


def cmd_scheme(args: argparse.Namespace) -> int:
    """Export a deployment as a declarative scheme.json, or describe one."""
    if getattr(args, "scheme_file", None):
        scheme = _scheme_for(args, None)
    else:
        profile = _profile(args.profile)
        scheme = profile.module.default_scheme(gamma=args.gamma)
    if args.output:
        scheme.save(args.output)
        print(f"wrote scheme artefact: {args.output}")
    else:
        print(scheme.describe())
    return 0


def _scheme_spec(spec: str) -> tuple[str, str]:
    """``NAME=path`` or bare ``path`` (name = file stem) -> (name, path).

    A bare path whose *directories* contain ``=`` (``/data/run=3/x.json``)
    is not a NAME=path spec: an existing file always wins, and a
    registry name never contains a path separator.
    """
    if "=" in spec and not os.path.exists(spec):
        name, _, path = spec.partition("=")
        if name and path and os.sep not in name:
            return name, path
    stem = os.path.splitext(os.path.basename(spec))[0]
    return stem, spec


def build_service(args: argparse.Namespace):
    """The configured service for ``wmxml serve`` (separate for tests)."""
    from repro.service import WmXMLService

    tenants_path = getattr(args, "tenants", None)
    if (getattr(args, "key", None) is None) == (tenants_path is None):
        raise SystemExit(
            "pass exactly one of --key (single-tenant) or "
            "--tenants tenants.json (multi-tenant)")
    if tenants_path is not None:
        return _build_tenant_service(args, tenants_path)
    system = WmXMLSystem(args.key, alpha=args.alpha,
                         registry=_registry_for(args),
                         issuer=getattr(args, "issuer", None) or "wmxml")
    for spec in args.scheme_files:
        name, path = _scheme_spec(spec)
        if name in system.scheme_names():
            # register() has replace semantics; silently serving only
            # the last of two same-named deployments would make every
            # detect run against the wrong query set.
            raise SystemExit(
                f"duplicate scheme name {name!r} (from {spec!r}); "
                "disambiguate with NAME=path")
        try:
            system.register_file(name, path)
        except OSError as error:
            raise SystemExit(f"cannot read scheme {path!r}: {error}")
        except WmXMLError as error:
            raise SystemExit(f"bad scheme {path!r}: {error}")
    # Reopen-after-crash recovery, run *after* the system attached its
    # sealing key so a torn trailing pair with a bad seal is caught
    # too; the report surfaces in the serve banner.  Storage being
    # dark at boot must not stop the daemon — embed/detect still
    # serve, so it starts in degraded mode instead of crashing.
    boot_degraded = False
    if system.registry is not None:
        try:
            system.registry.last_recovery = system.registry.recover()
        except RegistryUnavailableError:
            boot_degraded = True
    service = WmXMLService(system, processes=args.processes,
                           **_service_limits(args))
    if boot_degraded:
        service._degraded = True
    return service


def _service_limits(args: argparse.Namespace) -> dict:
    # None means "use the WmXMLService default" — the protocol
    # constants stay the one source of truth for both ceilings.
    return {
        key: value
        for key, value in (("max_body_bytes",
                            getattr(args, "max_body_bytes", None)),
                           ("max_schemes",
                            getattr(args, "max_schemes", None)),
                           ("retry_after",
                            getattr(args, "retry_after", None)))
        if value is not None
    }


def _build_tenant_service(args: argparse.Namespace, tenants_path: str):
    """The multi-tenant daemon: one tenants.json, many key namespaces.

    ``--scheme`` files are offered to every tenant (each compiles them
    under its own derived key); the shared registry gets the key map's
    rotation-stable sealer and the same reopen-after-crash recovery as
    the single-tenant path.
    """
    from repro.service import WmXMLService
    from repro.tenants import (TenantConfigError, TenantDirectory,
                               TenantsConfig)

    try:
        config = TenantsConfig.load(tenants_path)
    except TenantConfigError as error:
        raise SystemExit(f"bad tenants file {tenants_path!r}: {error}")
    registry = _registry_for(args)
    directory = TenantDirectory(
        config, registry=registry, alpha=args.alpha,
        issuer=getattr(args, "issuer", None) or "wmxml")
    loaded: set[str] = set()
    for spec in args.scheme_files:
        name, path = _scheme_spec(spec)
        if name in loaded:
            raise SystemExit(
                f"duplicate scheme name {name!r} (from {spec!r}); "
                "disambiguate with NAME=path")
        loaded.add(name)
        try:
            directory.register_all(name, WatermarkingScheme.load(path))
        except OSError as error:
            raise SystemExit(f"cannot read scheme {path!r}: {error}")
        except WmXMLError as error:
            raise SystemExit(f"bad scheme {path!r}: {error}")
    boot_degraded = False
    if registry is not None:
        try:
            registry.last_recovery = registry.recover()
        except RegistryUnavailableError:
            boot_degraded = True
    service = WmXMLService(tenants=directory, processes=args.processes,
                           **_service_limits(args))
    if boot_degraded:
        service._degraded = True
    return service


def cmd_token(args: argparse.Namespace) -> int:
    """Mint or verify bearer tokens against a tenants file."""
    from repro.tenants import (TenantConfigError, TenantDirectory,
                               TenantsConfig, UnauthorizedError)

    try:
        config = TenantsConfig.load(args.tenants)
    except TenantConfigError as error:
        raise SystemExit(f"bad tenants file {args.tenants!r}: {error}")
    directory = TenantDirectory(config)
    if args.token_command == "mint":
        try:
            token = directory.mint_token(
                args.tenant, scopes=args.scopes or None,
                ttl_s=args.ttl, key_id=args.key_id)
        except WmXMLError as error:
            raise SystemExit(
                f"cannot mint token for {args.tenant!r}: {error}")
        print(token)
        return 0
    token = args.token
    if token == "-":
        token = sys.stdin.read().strip()
    try:
        claims = directory.authenticate(token)
    except UnauthorizedError as error:
        print(f"error [unauthorized]: {error}", file=sys.stderr)
        return 1
    # Effective claims: the token's scopes intersected with what the
    # tenants file currently grants — what the daemon would honour.
    print(json.dumps({"tenant": claims.tenant,
                      "scopes": sorted(claims.scopes),
                      "key_id": claims.key_id,
                      "expires_at": claims.expires_at}, indent=2))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the watermarking daemon until SIGINT/SIGTERM."""
    from repro.service import running_server

    service = build_service(args)
    # The daemon serves on a worker thread (running_server) so the
    # main thread can wait on a signal: ``server.shutdown()`` blocks
    # until the serve loop exits and would deadlock if called from the
    # serving thread.
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    bound = False
    try:
        with running_server(service, host=args.host, port=args.port,
                            quiet=not args.access_log,
                            drain_timeout=args.drain_timeout) as server:
            bound = True
            host, port = server.server_address[:2]
            if service.tenants is not None:
                # register_all gives every tenant the same boot-time
                # schemes, so any tenant's namespace names them all.
                first = service.tenants.tenant_names()[0]
                names = ", ".join(
                    service.tenants.scheme_names(first)) or "(none)"
                registry = service.tenants.registry
                tenant_note = (f", tenants="
                               f"{len(service.tenants.tenant_names())}")
            else:
                names = ", ".join(
                    service.system.scheme_names()) or "(none)"
                registry = service.system.registry
                tenant_note = ""
            # flush: supervisors (and the CI smoke script) parse the
            # banner for the bound port through a block-buffered pipe.
            registry_note = (f", registry={args.registry}"
                             if getattr(args, "registry", None) else "")
            print(f"wmxml serve: listening on http://{host}:{port} "
                  f"(schemes: {names}, "
                  f"processes={args.processes or 1}"
                  f"{tenant_note}{registry_note})",
                  flush=True)
            recovery = (getattr(registry, "last_recovery", None)
                        if registry is not None else None)
            if recovery is not None and recovery.actions:
                print(f"wmxml serve: crash recovery quarantined "
                      f"{len(recovery.actions)} torn trailing "
                      f"artefact(s); ledger verifiable={recovery.ok}",
                      flush=True)
            elif recovery is not None and not recovery.ok:
                reason = (recovery.verification.reason
                          if recovery.verification else "unknown")
                print(f"wmxml serve: WARNING — registry chain is "
                      f"broken and not crash-recoverable: {reason}",
                      flush=True)
            print("endpoints: POST /v1/embed[/batch]  "
                  "POST /v1/detect[/batch]  GET|PUT /v1/schemes[/{name}]"
                  "  GET /v1/records  GET /v1/ledger/verify  "
                  "POST /v1/trace  GET /v1/healthz  GET /v1/stats",
                  flush=True)
            stop.wait()
    except OSError as error:
        if bound:
            raise
        raise SystemExit(
            f"cannot bind {args.host}:{args.port}: {error}")
    print("wmxml serve: shut down cleanly")
    return 0


def cmd_records(args: argparse.Namespace) -> int:
    """List, export, or restore the persistent watermark registry."""
    registry = _registry_required(args)
    if args.import_file:
        try:
            with open(args.import_file, "r", encoding="utf-8") as handle:
                loaded = registry.import_jsonl(handle)
        except OSError as error:
            raise SystemExit(
                f"cannot read {args.import_file!r}: {error}")
        except WmXMLError as error:
            print(f"error [{error_payload(error)['code']}]: {error}",
                  file=sys.stderr)
            return 2
        print(f"restored {loaded} rows into {args.registry}")
        return 0
    if args.export == "jsonl":
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                lines = registry.export_jsonl(handle)
            print(f"exported {lines} lines to {args.output}")
        else:
            registry.export_jsonl(sys.stdout)
        return 0
    entries = registry.records(
        recipient=args.recipient,
        scheme_fingerprint=args.scheme_fingerprint,
        document_hash=args.document_hash,
        offset=args.offset, limit=args.limit)
    total = registry.count(
        recipient=args.recipient,
        scheme_fingerprint=args.scheme_fingerprint,
        document_hash=args.document_hash)
    for entry in entries:
        print(f"#{entry.sequence}  {entry.recipient}  "
              f"keying={entry.keying}  scheme={entry.scheme_fingerprint}  "
              f"doc={entry.document_hash[:16]}...  {entry.created_at}")
    shown = len(entries)
    print(f"{shown} of {total} record(s) "
          f"({len(registry.recipients())} distinct recipients, "
          f"{registry.backend.block_count()} ledger blocks)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Trace a suspected leak against every persisted issued copy."""
    profile = _profile(args.profile)
    scheme = _scheme_for(args, profile)
    registry = _registry_required(args)
    system = WmXMLSystem(args.key, alpha=args.alpha, registry=registry)
    shape = profile.shape(args.shape) if args.shape else None
    try:
        document = parse_file(args.input, strip_whitespace=True)
        trace = system.trace(scheme, document, shape=shape,
                             strategy=args.strategy,
                             recipients=args.recipients or None)
    except WmXMLError as error:
        print(f"error [{error_payload(error)['code']}]: {error}",
              file=sys.stderr)
        return 2
    print(trace)
    if trace.prime_suspect:
        print(f"prime suspect: {trace.prime_suspect}")
    if args.result:
        trace.save(args.result)
        print(f"trace result: {args.result}")
    return 0 if trace.accused else 1


def cmd_ledger(args: argparse.Namespace) -> int:
    """Verify the provenance ledger end to end."""
    registry = _registry_required(args)
    if args.key:
        registry.attach_sealer(KeyedPRF(args.key))
    verification = registry.verify_chain()
    seal_note = ("HMAC seals verified" if verification.sealed
                 else "hash links only (pass --key to verify seals)")
    if verification.intact:
        print(f"ledger intact: {verification.blocks} blocks over "
              f"{verification.records} records ({seal_note})")
        return 0
    where = ("" if verification.broken_index is None
             else f" at block {verification.broken_index}")
    print(f"error [chain-broken]: ledger failed verification{where}: "
          f"{verification.reason}", file=sys.stderr)
    return 1


def cmd_ledger_recover(args: argparse.Namespace) -> int:
    """Run crash recovery: quarantine torn trailing appends."""
    registry = _registry_required(args)
    if args.key:
        registry.attach_sealer(KeyedPRF(args.key))
    try:
        report = registry.recover()
    except WmXMLError as error:
        print(f"error [{error_payload(error)['code']}]: {error}",
              file=sys.stderr)
        return 2
    for action in report.actions:
        print(f"quarantined: {action}")
    quarantined = registry.quarantined()
    print(f"recovery: {report.records} records, {report.blocks} ledger "
          f"blocks, {len(report.actions)} artefact(s) quarantined this "
          f"pass ({len(quarantined)} total in quarantine)")
    if report.ok:
        print("ledger verifiable: yes")
        return 0
    reason = (report.verification.reason if report.verification
              else "chain not verifiable")
    print(f"error [chain-broken]: {reason} — damage is not a torn "
          f"trailing append; restore from a records export",
          file=sys.stderr)
    return 1


def cmd_faults(args: argparse.Namespace) -> int:
    """List the deterministic fault-injection points."""
    from repro import faults

    for name, description in faults.fault_points().items():
        print(f"{name}\n    {description}")
    print()
    print("arm via WMXML_FAULTS=\"point=mode[:k=v...][,...]\" "
          "(modes: raise, delay, corrupt, exit; "
          "keys: times, after, p, seed, ms, scope)")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """Stage-timed embed/detect pipeline with throughput rates."""
    profile = _profile(args.profile)
    document = profile.generate(args.size, args.seed)
    scheme = _scheme_for(args, profile, gamma=args.gamma)
    system = WmXMLSystem(args.key)
    pipeline = system.pipeline(scheme)
    timer = StageTimer()
    with use_timer(timer):
        with timer.stage("embed (total)"):
            result = pipeline.embed(document, args.message)
        with timer.stage("detect (scan)"):
            scan = pipeline.detect(result.document, result.record,
                                   expected=args.message, strategy="scan")
        with timer.stage("detect (indexed)"):
            indexed = pipeline.detect(result.document, result.record,
                                      expected=args.message,
                                      strategy="indexed")
    if not (scan.detected and indexed.detected):
        print("warning: pipeline failed to detect its own watermark")
    elements = document.count_elements()
    print(timer.render(f"pipeline stages ({args.profile}, "
                       f"{args.size} entities, {elements} elements)"))
    reporter = ThroughputReporter()
    reporter.add("embed", elements, timer.total_ms("embed (total)") / 1000,
                 unit="elements")
    reporter.add("detect-scan", len(result.record.queries),
                 timer.total_ms("detect (scan)") / 1000, unit="queries")
    reporter.add("detect-indexed", len(result.record.queries),
                 timer.total_ms("detect (indexed)") / 1000, unit="queries")
    print()
    print(reporter.render())
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the E9 regression bench and archive BENCH_e9.json."""
    try:
        return perf_bench.run_and_check(
            path=args.output, books=args.books, repeats=args.repeats,
            check=not args.no_check, smoke=args.smoke,
            processes=args.processes)
    except (perf_bench.BenchError, ValueError) as error:
        print(f"error: {error}")
        return 2


def cmd_experiment(args: argparse.Namespace) -> int:
    config = ExperimentConfig(books=args.size, seed=args.seed)
    if args.id == "all":
        from repro.harness import render_report, run_all

        tables = run_all(config, progress=print)
        print(render_report(tables))
        if args.csv:
            with open(args.csv, "w", encoding="utf-8") as handle:
                handle.write(render_report(tables))
            print(f"wrote {args.csv}")
        return 0
    try:
        runner = EXPERIMENTS[args.id]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {args.id!r}; choices: "
            f"{sorted(EXPERIMENTS)} or 'all'")
    table = runner(config)
    print(table)
    if args.csv:
        table.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


# -- parser ------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wmxml",
        description="WmXML: watermarking XML data (VLDB 2005 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesise a dataset")
    gen.add_argument("--profile", default="bibliography",
                     choices=sorted(PROFILES))
    gen.add_argument("--size", type=int, default=100)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--output", "-o", required=True)
    gen.set_defaults(handler=cmd_generate)

    embed = sub.add_parser("embed", help="embed a watermark")
    embed.add_argument("--profile", default="bibliography",
                       choices=sorted(PROFILES))
    embed.add_argument("--scheme", dest="scheme_file",
                       help="declarative scheme.json deployment artefact "
                       "(overrides the profile's default scheme and "
                       "--gamma)")
    embed.add_argument("--input", "-i", required=True, nargs="+",
                       help="input document(s); with several, --output "
                       "and --record name directories and the batch "
                       "runs through the parallel engine")
    embed.add_argument("--output", "-o", required=True)
    embed.add_argument("--record", "-r",
                       help="where to save the query set Q (JSON); "
                       "optional with --registry, which persists Q "
                       "itself")
    embed.add_argument("--key", "-k", required=True)
    embed.add_argument("--message", "-m",
                       help="watermark message (required unless "
                       "--recipient issues a fingerprinted copy)")
    embed.add_argument("--recipient",
                       help="issue a fingerprinted copy to this recipient "
                       "id: the id becomes the message, embedded under "
                       "the recipient's derived key (traceable via "
                       "'wmxml trace')")
    embed.add_argument("--registry", metavar="PATH.DB",
                       help="record every embed into this SQLite "
                       "registry + provenance ledger")
    embed.add_argument("--issuer", default="wmxml",
                       help="issuer identity stamped into registry "
                       "records (default: wmxml)")
    embed.add_argument("--gamma", type=int, default=4)
    embed.add_argument("--processes", type=int, default=None,
                       help="shard a multi-document batch over N worker "
                       "processes (parse + embed + serialise fused "
                       "per document)")
    embed.add_argument("--profile-stages", dest="profile_stages",
                       action="store_true",
                       help="print per-stage timings after embedding")
    embed.set_defaults(handler=cmd_embed)

    detect = sub.add_parser("detect", help="detect a watermark")
    detect.add_argument("--profile", default="bibliography",
                        choices=sorted(PROFILES))
    detect.add_argument("--scheme", dest="scheme_file",
                        help="declarative scheme.json deployment artefact")
    detect.add_argument("--input", "-i", required=True, nargs="+",
                        help="suspected document(s); with several, every "
                        "copy is checked against the same record")
    detect.add_argument("--record", "-r",
                        help="the saved query-set record (required "
                        "unless --recipient looks one up in --registry)")
    detect.add_argument("--recipient",
                        help="use the newest registry record for this "
                        "recipient instead of --record (needs "
                        "--registry)")
    detect.add_argument("--registry", metavar="PATH.DB",
                        help="SQLite registry to look records up in")
    detect.add_argument("--key", "-k", required=True)
    detect.add_argument("--message", "-m",
                        help="expected message (verification mode)")
    detect.add_argument("--shape", help="current organisation of the data "
                        "(enables query rewriting)")
    detect.add_argument("--alpha", type=float, default=1e-3)
    detect.add_argument("--strategy", default="auto",
                        choices=["auto", "indexed", "scan"],
                        help="query engine: indexed logical executor "
                        "(one shred; what 'auto' always runs, with "
                        "vote-for-vote equivalence proven on every "
                        "profile) or per-query XPath scan (the "
                        "reference engine)")
    detect.add_argument("--indexed", action="store_true",
                        help="deprecated alias for --strategy indexed")
    detect.add_argument("--processes", type=int, default=None,
                        help="shard a multi-document batch over N worker "
                        "processes (parse + detect fused per document)")
    detect.add_argument("--result", help="also save the detection result "
                        "as versioned JSON here")
    detect.add_argument("--profile-stages", dest="profile_stages",
                        action="store_true",
                        help="print per-stage timings after detection")
    detect.set_defaults(handler=cmd_detect)

    attack = sub.add_parser("attack", help="apply a §4 attack")
    attack.add_argument("--profile", default="bibliography",
                        choices=sorted(PROFILES))
    attack.add_argument("--scheme", dest="scheme_file",
                        help="scheme.json whose shape is the reorganise "
                        "attack's source organisation")
    attack.add_argument("--input", "-i", required=True)
    attack.add_argument("--output", "-o", required=True)
    attack.add_argument("--kind", required=True,
                        choices=["alter", "delete", "insert", "reduce",
                                 "shuffle", "reorganize", "unify"])
    attack.add_argument("--rate", type=float, default=0.2,
                        help="alteration rate / keep fraction")
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument("--shape", help="current shape (reorganize)")
    attack.add_argument("--to-shape", help="target shape (reorganize)")
    attack.set_defaults(handler=cmd_attack)

    usability = sub.add_parser("usability",
                               help="score usability vs the original")
    usability.add_argument("--profile", default="bibliography",
                           choices=sorted(PROFILES))
    usability.add_argument("--scheme", dest="scheme_file",
                           help="scheme.json supplying the shape and "
                           "usability templates")
    usability.add_argument("--original", required=True)
    usability.add_argument("--input", "-i", required=True)
    usability.add_argument("--shape", help="original organisation")
    usability.add_argument("--current-shape",
                           help="suspected document's organisation")
    usability.set_defaults(handler=cmd_usability)

    discover = sub.add_parser("discover",
                              help="mine candidate keys and FDs")
    discover.add_argument("--profile", default="bibliography",
                          choices=sorted(PROFILES))
    discover.add_argument("--input", "-i", required=True)
    discover.add_argument("--shape")
    discover.set_defaults(handler=cmd_discover)

    schema = sub.add_parser(
        "schema", help="infer a schema (as DTD) or validate against one")
    schema.add_argument("--input", "-i", required=True)
    schema.add_argument("--dtd", help="write the inferred DTD here")
    schema.add_argument("--validate-dtd",
                        help="validate the document against this DTD")
    schema.set_defaults(handler=cmd_schema)

    scheme = sub.add_parser(
        "scheme",
        help="export a deployment as scheme.json, or describe one")
    scheme.add_argument("--profile", default="bibliography",
                        choices=sorted(PROFILES))
    scheme.add_argument("--scheme", dest="scheme_file",
                        help="describe/re-export an existing scheme.json "
                        "instead of a profile default")
    scheme.add_argument("--gamma", type=int, default=4)
    scheme.add_argument("--output", "-o",
                        help="write the declarative artefact here "
                        "(omit to print a description)")
    scheme.set_defaults(handler=cmd_scheme)

    serve = sub.add_parser(
        "serve", help="run the HTTP watermarking service daemon")
    serve.add_argument("--scheme", dest="scheme_files", action="append",
                       required=True, metavar="[NAME=]PATH",
                       help="scheme.json to register (repeatable); the "
                       "registry name defaults to the file stem")
    serve.add_argument("--key", "-k",
                       help="the owner's secret key (never leaves the "
                       "daemon); single-tenant mode, mutually "
                       "exclusive with --tenants")
    serve.add_argument("--tenants", metavar="PATH.JSON",
                       help="multi-tenant mode: serve the tenants in "
                       "this wmxml-tenants-v1 file, each under its own "
                       "derived key, with bearer-token auth ('wmxml "
                       "token mint'), per-route scopes and per-tenant "
                       "quotas; mutually exclusive with --key")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address; a --key daemon has NO "
                       "built-in auth (anyone who can reach the port "
                       "gets an embed/detect oracle under your key), "
                       "so keep it on loopback or behind an "
                       "authenticating proxy — or run --tenants, "
                       "where every endpoint except /v1/healthz "
                       "demands a bearer token")
    serve.add_argument("--port", type=int, default=8420,
                       help="listen port (0 binds an ephemeral port)")
    serve.add_argument("--processes", type=int, default=None,
                       help="worker processes for the batch endpoints "
                       "(rides the parallel engine; unset = serial)")
    serve.add_argument("--alpha", type=float, default=1e-3)
    serve.add_argument("--max-body-bytes", type=int, default=None,
                       help="reject request bodies larger than this "
                       "(HTTP 413; default: the protocol ceiling, "
                       "64 MiB)")
    serve.add_argument("--max-schemes", type=int, default=None,
                       help="ceiling on wire-registered (PUT) schemes, "
                       "on top of the --scheme files loaded at boot "
                       "(HTTP 507 beyond; default 256)")
    serve.add_argument("--registry", metavar="PATH.DB",
                       help="persist every embed into this SQLite "
                       "registry + provenance ledger and enable "
                       "/v1/records, /v1/ledger/verify and /v1/trace")
    serve.add_argument("--issuer", default="wmxml",
                       help="issuer identity stamped into registry "
                       "records (default: wmxml)")
    serve.add_argument("--access-log", action="store_true",
                       help="log each request to stderr")
    serve.add_argument("--retry-after", type=int, default=None,
                       help="seconds advertised in the Retry-After "
                       "header on 503 responses while the registry is "
                       "degraded (default 1)")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       help="seconds to wait for in-flight requests to "
                       "finish on SIGTERM/SIGINT before closing the "
                       "socket (default 5)")
    serve.set_defaults(handler=cmd_serve)

    token = sub.add_parser(
        "token",
        help="mint/verify bearer tokens for a --tenants daemon")
    token_sub = token.add_subparsers(dest="token_command", required=True)
    mint = token_sub.add_parser(
        "mint", help="mint a bearer token for one tenant")
    mint.add_argument("--tenants", required=True, metavar="PATH.JSON",
                      help="the wmxml-tenants-v1 file the daemon "
                      "serves from (holds the signing keys)")
    mint.add_argument("--tenant", required=True,
                      help="which tenant the token authenticates as")
    mint.add_argument("--scope", dest="scopes", action="append",
                      metavar="SCOPE",
                      help="restrict the token to these scopes "
                      "(repeatable; default: every scope the tenants "
                      "file grants — a token can narrow a grant, "
                      "never widen it)")
    mint.add_argument("--ttl", type=float, default=None,
                      help="token lifetime in seconds (default: no "
                      "expiry)")
    mint.add_argument("--key-id", type=int, default=None,
                      help="sign under this key generation (default: "
                      "the active one)")
    mint.set_defaults(handler=cmd_token)
    token_verify = token_sub.add_parser(
        "verify",
        help="verify a token and print its effective claims")
    token_verify.add_argument("--tenants", required=True,
                              metavar="PATH.JSON")
    token_verify.add_argument("token",
                              help="the token, or '-' to read it from "
                              "stdin")
    token_verify.set_defaults(handler=cmd_token)

    records = sub.add_parser(
        "records",
        help="list/export/restore the persistent watermark registry")
    records.add_argument("--registry", metavar="PATH.DB", required=True)
    records.add_argument("--recipient", help="filter by recipient id")
    records.add_argument("--scheme-fingerprint",
                         help="filter by pipeline fingerprint")
    records.add_argument("--document-hash",
                         help="filter by marked-document content hash")
    records.add_argument("--offset", type=int, default=0)
    records.add_argument("--limit", type=int, default=100)
    records.add_argument("--export", choices=["jsonl"],
                         help="dump the whole registry (records + ledger) "
                         "as JSON lines instead of listing")
    records.add_argument("--output", "-o",
                         help="write the export here (default: stdout)")
    records.add_argument("--import", dest="import_file", metavar="FILE",
                         help="restore a JSONL export into this (empty) "
                         "registry — the schema-migration path")
    records.set_defaults(handler=cmd_records)

    trace = sub.add_parser(
        "trace",
        help="trace a leaked copy against every registry-issued copy")
    trace.add_argument("--profile", default="bibliography",
                       choices=sorted(PROFILES))
    trace.add_argument("--scheme", dest="scheme_file",
                       help="declarative scheme.json deployment artefact")
    trace.add_argument("--input", "-i", required=True,
                       help="the suspected leaked document")
    trace.add_argument("--registry", metavar="PATH.DB", required=True)
    trace.add_argument("--key", "-k", required=True,
                       help="the owner's master secret key")
    trace.add_argument("--shape", help="the copy's current organisation")
    trace.add_argument("--strategy", default="auto",
                       choices=["auto", "indexed", "scan"])
    trace.add_argument("--alpha", type=float, default=1e-3)
    trace.add_argument("--recipients", nargs="+",
                       help="restrict the sweep to these recipients")
    trace.add_argument("--result",
                       help="save the wmxml-trace-v1 verdict here")
    trace.set_defaults(handler=cmd_trace)

    ledger = sub.add_parser(
        "ledger", help="provenance-ledger operations")
    ledger_sub = ledger.add_subparsers(dest="ledger_command",
                                       required=True)
    verify = ledger_sub.add_parser(
        "verify", help="re-verify the whole hash chain")
    verify.add_argument("--registry", metavar="PATH.DB", required=True)
    verify.add_argument("--key", "-k",
                        help="the system key; verifies the HMAC seals "
                        "too (omit for hash-links-only verification)")
    verify.set_defaults(handler=cmd_ledger)
    recover = ledger_sub.add_parser(
        "recover",
        help="quarantine torn trailing appends after a crash")
    recover.add_argument("--registry", metavar="PATH.DB", required=True)
    recover.add_argument("--key", "-k",
                         help="the system key; recovered blocks are "
                         "seal-verified too when given")
    recover.set_defaults(handler=cmd_ledger_recover)

    faults = sub.add_parser(
        "faults",
        help="list the deterministic fault-injection points")
    faults.set_defaults(handler=cmd_faults)

    perf = sub.add_parser("perf", help="stage-timed pipeline profile")
    perf.add_argument("--profile", default="bibliography",
                      choices=sorted(PROFILES))
    perf.add_argument("--scheme", dest="scheme_file",
                      help="declarative scheme.json deployment artefact")
    perf.add_argument("--size", type=int, default=200)
    perf.add_argument("--seed", type=int, default=42)
    perf.add_argument("--gamma", type=int, default=2)
    perf.add_argument("--key", "-k", default="wmxml-perf-key")
    perf.add_argument("--message", "-m", default="(c) WmXML")
    perf.set_defaults(handler=cmd_perf)

    bench = sub.add_parser(
        "bench", help="run the E9 regression bench (BENCH_e9.json)")
    bench.add_argument("--books", type=int, default=200)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--output", "-o", default=perf_bench.BENCH_FILE)
    bench.add_argument("--no-check", action="store_true",
                       help="record timings without gating on regression")
    bench.add_argument("--smoke", action="store_true",
                       help="CI smoke mode: single repetition, no "
                       "regression gate, no archive write")
    bench.add_argument("--processes", type=int, default=4,
                       help="worker count for the parallel batch-engine "
                       "stages (0 skips them; default 4)")
    bench.set_defaults(handler=cmd_bench)

    experiment = sub.add_parser("experiment",
                                help="run an E1-E10 experiment")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS) + ["all"])
    experiment.add_argument("--size", type=int, default=120,
                            help="dataset size (books)")
    experiment.add_argument("--seed", type=int, default=42)
    experiment.add_argument("--csv", help="also write the table as CSV")
    experiment.set_defaults(handler=cmd_experiment)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point for the ``wmxml`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
