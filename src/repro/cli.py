"""The ``wmxml`` command-line tool — the demo system's front door.

Mirrors the workflow of the paper's demonstration (§4):

* ``wmxml generate`` — synthesise a dataset (bibliography / jobs /
  library) to an XML file;
* ``wmxml embed`` — watermark a document with a secret key and a
  message, writing the marked document and the query-set record Q;
* ``wmxml detect`` — verify a watermark in a suspected document, with
  optional query rewriting for a reorganised organisation;
* ``wmxml attack`` — apply one of the §4 attacks to a document;
* ``wmxml usability`` — score a document's usability against the
  original via the profile's query templates;
* ``wmxml discover`` — mine candidate keys and FDs from a document;
* ``wmxml experiment`` — run one of the E1-E10 experiments.

Dataset *profiles* bundle the shapes, schemes, and templates so the CLI
stays declarative; custom deployments use the library API directly.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Optional

from repro.attacks import (
    NodeDeletionAttack,
    NodeInsertionAttack,
    RedundancyUnificationAttack,
    ReductionAttack,
    ReorganizationAttack,
    SiblingShuffleAttack,
    ValueAlterationAttack,
)
from repro.core import (
    UsabilityBaseline,
    Watermark,
    WatermarkRecord,
    WmXMLDecoder,
    WmXMLEncoder,
)
from repro.datasets import bibliography, jobs, library
from repro.harness import EXPERIMENTS, ExperimentConfig
from repro.semantics import (
    discover_fds,
    discover_keys,
    infer_schema,
    parse_dtd,
    render_dtd,
    validate,
)
from repro.xmlmodel import parse_file, write_file


class Profile:
    """A dataset profile: shapes, scheme factory, generator."""

    def __init__(self, name: str, module, shapes: dict) -> None:
        self.name = name
        self.module = module
        self.shapes = shapes

    def shape(self, name: Optional[str]):
        if name is None:
            return next(iter(self.shapes.values()))
        try:
            return self.shapes[name]
        except KeyError:
            raise SystemExit(
                f"unknown shape {name!r} for profile {self.name!r}; "
                f"choices: {sorted(self.shapes)}")


PROFILES = {
    "bibliography": Profile("bibliography", bibliography, {
        "book-centric": bibliography.book_shape(),
        "publisher-centric": bibliography.publisher_shape(),
        "editor-centric": bibliography.editor_shape(),
    }),
    "jobs": Profile("jobs", jobs, {
        "job-listing": jobs.listing_shape(),
        "jobs-by-company": jobs.by_company_shape(),
        "jobs-by-city": jobs.by_city_shape(),
    }),
    "library": Profile("library", library, {
        "library-catalogue": library.catalogue_shape(),
        "library-by-category": library.by_category_shape(),
    }),
}


def _profile(name: str) -> Profile:
    try:
        return PROFILES[name]
    except KeyError:
        raise SystemExit(
            f"unknown profile {name!r}; choices: {sorted(PROFILES)}")


# -- subcommand handlers ------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    module = profile.module
    if args.profile == "bibliography":
        doc = module.generate_document(module.BibliographyConfig(
            books=args.size, seed=args.seed))
    elif args.profile == "jobs":
        doc = module.generate_document(module.JobsConfig(
            jobs=args.size, seed=args.seed))
    else:
        doc = module.generate_document(module.LibraryConfig(
            items=args.size, seed=args.seed))
    write_file(args.output, doc)
    print(f"wrote {args.profile} dataset ({args.size} entities) "
          f"to {args.output}")
    return 0


def cmd_embed(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    scheme = profile.module.default_scheme(gamma=args.gamma)
    document = parse_file(args.input, strip_whitespace=True)
    watermark = Watermark.from_message(args.message)
    encoder = WmXMLEncoder(scheme, args.key)
    result = encoder.embed(document, watermark)
    write_file(args.output, result.document)
    result.record.save(args.record)
    stats = result.stats
    print(f"embedded {len(watermark)}-bit watermark: "
          f"{stats.selected_groups}/{stats.capacity_groups} groups "
          f"selected (gamma={args.gamma}), "
          f"{stats.nodes_modified} nodes perturbed")
    print(f"marked document: {args.output}")
    print(f"query set Q:     {args.record}  (keep with your secret key)")
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    shape = profile.shape(args.shape)
    document = parse_file(args.input, strip_whitespace=True)
    record = WatermarkRecord.load(args.record)
    decoder = WmXMLDecoder(args.key, alpha=args.alpha)
    expected = Watermark.from_message(args.message) if args.message else None
    outcome = decoder.detect(document, record, shape, expected=expected)
    print(outcome)
    if outcome.recovered_message:
        print(f"recovered message: {outcome.recovered_message!r}")
    if outcome.queries_rejected:
        print(f"warning: {outcome.queries_rejected} stored queries failed "
              "key authentication")
    return 0 if outcome.detected else 1


def cmd_attack(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    document = parse_file(args.input, strip_whitespace=True)
    if args.kind == "alter":
        attack = ValueAlterationAttack(args.rate, seed=args.seed)
    elif args.kind == "delete":
        attack = NodeDeletionAttack(args.rate, seed=args.seed)
    elif args.kind == "insert":
        attack = NodeInsertionAttack(args.rate, seed=args.seed)
    elif args.kind == "reduce":
        attack = ReductionAttack(args.rate, seed=args.seed)
    elif args.kind == "shuffle":
        attack = SiblingShuffleAttack(seed=args.seed)
    elif args.kind == "reorganize":
        source = profile.shape(args.shape)
        target = profile.shape(args.to_shape)
        attack = ReorganizationAttack(source, target)
    elif args.kind == "unify":
        fds = (profile.module.semantic_fds()
               if hasattr(profile.module, "semantic_fds")
               else [profile.module.semantic_fd()])
        attack = RedundancyUnificationAttack(fds[0], seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown attack {args.kind!r}")
    report = attack.apply(document)
    write_file(args.output, report.document)
    print(report)
    print(f"attacked document: {args.output}")
    return 0


def cmd_usability(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    original_shape = profile.shape(args.shape)
    current_shape = profile.shape(args.current_shape or args.shape)
    original = parse_file(args.original, strip_whitespace=True)
    suspected = parse_file(args.input, strip_whitespace=True)
    templates = profile.module.usability_templates()
    baseline = UsabilityBaseline.snapshot(original, original_shape,
                                          templates)
    report = baseline.evaluate(suspected, current_shape)
    print(report)
    for score in report.per_template:
        print(f"  {score.template}: strict={score.strict:.3f} "
              f"jaccard={score.jaccard:.3f} ({score.queries} queries)")
    print("usability destroyed" if report.destroyed()
          else "usability preserved")
    return 0


def cmd_discover(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    shape = profile.shape(args.shape)
    document = parse_file(args.input, strip_whitespace=True)
    rows = shape.shred(document)
    fields = list(shape.field_names)
    print(f"shredded {len(rows)} rows with fields: {', '.join(fields)}")
    print("\ncandidate keys:")
    for key in discover_keys(rows, fields):
        print(f"  {key}")
    print("\ncandidate functional dependencies:")
    for fd in discover_fds(rows, fields):
        print(f"  {fd}")
    return 0


def cmd_schema(args: argparse.Namespace) -> int:
    document = parse_file(args.input, strip_whitespace=True)
    if args.validate_dtd:
        with open(args.validate_dtd, "r", encoding="utf-8") as handle:
            schema = parse_dtd(handle.read())
        violations = validate(schema, document)
        if violations:
            print(f"{len(violations)} violation(s):")
            for violation in violations[:25]:
                print(f"  {violation}")
            return 1
        print("document is valid against the DTD")
        return 0
    schema = infer_schema(document)
    dtd_text = render_dtd(schema)
    print(dtd_text, end="")
    if args.dtd:
        with open(args.dtd, "w", encoding="utf-8") as handle:
            handle.write(dtd_text)
        print(f"\nwrote {args.dtd}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    config = ExperimentConfig(books=args.size, seed=args.seed)
    if args.id == "all":
        from repro.harness import render_report, run_all

        tables = run_all(config, progress=print)
        print(render_report(tables))
        if args.csv:
            with open(args.csv, "w", encoding="utf-8") as handle:
                handle.write(render_report(tables))
            print(f"wrote {args.csv}")
        return 0
    try:
        runner = EXPERIMENTS[args.id]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {args.id!r}; choices: "
            f"{sorted(EXPERIMENTS)} or 'all'")
    table = runner(config)
    print(table)
    if args.csv:
        table.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


# -- parser ------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wmxml",
        description="WmXML: watermarking XML data (VLDB 2005 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesise a dataset")
    gen.add_argument("--profile", default="bibliography",
                     choices=sorted(PROFILES))
    gen.add_argument("--size", type=int, default=100)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--output", "-o", required=True)
    gen.set_defaults(handler=cmd_generate)

    embed = sub.add_parser("embed", help="embed a watermark")
    embed.add_argument("--profile", default="bibliography",
                       choices=sorted(PROFILES))
    embed.add_argument("--input", "-i", required=True)
    embed.add_argument("--output", "-o", required=True)
    embed.add_argument("--record", "-r", required=True,
                       help="where to save the query set Q (JSON)")
    embed.add_argument("--key", "-k", required=True)
    embed.add_argument("--message", "-m", required=True)
    embed.add_argument("--gamma", type=int, default=4)
    embed.set_defaults(handler=cmd_embed)

    detect = sub.add_parser("detect", help="detect a watermark")
    detect.add_argument("--profile", default="bibliography",
                        choices=sorted(PROFILES))
    detect.add_argument("--input", "-i", required=True)
    detect.add_argument("--record", "-r", required=True)
    detect.add_argument("--key", "-k", required=True)
    detect.add_argument("--message", "-m",
                        help="expected message (verification mode)")
    detect.add_argument("--shape", help="current organisation of the data "
                        "(enables query rewriting)")
    detect.add_argument("--alpha", type=float, default=1e-3)
    detect.set_defaults(handler=cmd_detect)

    attack = sub.add_parser("attack", help="apply a §4 attack")
    attack.add_argument("--profile", default="bibliography",
                        choices=sorted(PROFILES))
    attack.add_argument("--input", "-i", required=True)
    attack.add_argument("--output", "-o", required=True)
    attack.add_argument("--kind", required=True,
                        choices=["alter", "delete", "insert", "reduce",
                                 "shuffle", "reorganize", "unify"])
    attack.add_argument("--rate", type=float, default=0.2,
                        help="alteration rate / keep fraction")
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument("--shape", help="current shape (reorganize)")
    attack.add_argument("--to-shape", help="target shape (reorganize)")
    attack.set_defaults(handler=cmd_attack)

    usability = sub.add_parser("usability",
                               help="score usability vs the original")
    usability.add_argument("--profile", default="bibliography",
                           choices=sorted(PROFILES))
    usability.add_argument("--original", required=True)
    usability.add_argument("--input", "-i", required=True)
    usability.add_argument("--shape", help="original organisation")
    usability.add_argument("--current-shape",
                           help="suspected document's organisation")
    usability.set_defaults(handler=cmd_usability)

    discover = sub.add_parser("discover",
                              help="mine candidate keys and FDs")
    discover.add_argument("--profile", default="bibliography",
                          choices=sorted(PROFILES))
    discover.add_argument("--input", "-i", required=True)
    discover.add_argument("--shape")
    discover.set_defaults(handler=cmd_discover)

    schema = sub.add_parser(
        "schema", help="infer a schema (as DTD) or validate against one")
    schema.add_argument("--input", "-i", required=True)
    schema.add_argument("--dtd", help="write the inferred DTD here")
    schema.add_argument("--validate-dtd",
                        help="validate the document against this DTD")
    schema.set_defaults(handler=cmd_schema)

    experiment = sub.add_parser("experiment",
                                help="run an E1-E10 experiment")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS) + ["all"])
    experiment.add_argument("--size", type=int, default=120,
                            help="dataset size (books)")
    experiment.add_argument("--seed", type=int, default=42)
    experiment.add_argument("--csv", help="also write the table as CSV")
    experiment.set_defaults(handler=cmd_experiment)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point for the ``wmxml`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
