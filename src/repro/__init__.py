"""WmXML — a system for watermarking XML data.

A from-scratch Python reproduction of *"WmXML: A System for Watermarking
XML Data"* (Zhou, Pang, Tan, Mangla; VLDB 2005).  See README.md for the
architecture overview, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the paper-versus-measured results.

Package map (bottom-up):

* :mod:`repro.api`        — **the public facade**: system, pipelines,
  scheme builder, consolidated error hierarchy
* :mod:`repro.service`    — the HTTP daemon (``wmxml serve``) and the
  ``WmXMLClient`` SDK, speaking ``wmxml-request-v1``
* :mod:`repro.xmlmodel`   — XML tree model, parser, serialisers
* :mod:`repro.xpath`      — XPath 1.0-subset query engine
* :mod:`repro.semantics`  — schemas, keys, FDs, records, shapes
* :mod:`repro.rewriting`  — logical queries, rewriting, reorganisation
* :mod:`repro.core`       — the WmXML encoder/decoder and plug-ins
* :mod:`repro.attacks`    — the §4 attack suite
* :mod:`repro.baselines`  — Agrawal-Kiernan / Sion comparison schemes
* :mod:`repro.datasets`   — seeded demo datasets (bibliography/jobs/library)
* :mod:`repro.harness`    — experiments E1-E10 and result tables
* :mod:`repro.cli`        — the ``wmxml`` command-line tool

New code should drive the system through the facade::

    from repro import api

    system = api.WmXMLSystem("owner-secret")
    pipeline = system.pipeline(system.register("books", scheme))
    result = pipeline.embed(document, "(c) me")

The pre-facade entry points stay importable from here (and from
:mod:`repro.core`) for existing callers::

    from repro import (Watermark, WatermarkingScheme, WmXMLEncoder,
                       WmXMLDecoder, CarrierSpec, KeyIdentifier,
                       FDIdentifier, UsabilityTemplate)
"""

from repro.core import (
    CarrierSpec,
    DetectionResult,
    EmbeddingResult,
    FDIdentifier,
    KeyIdentifier,
    UsabilityBaseline,
    UsabilityTemplate,
    Watermark,
    WatermarkRecord,
    WatermarkingScheme,
    WmXMLDecoder,
    WmXMLEncoder,
)
from repro.semantics import DocumentShape, XMLFD, XMLKey, level, shape
from repro.xmlmodel import parse, parse_file, pretty, serialize, write_file

__version__ = "1.0.0"

__all__ = [
    "CarrierSpec",
    "DetectionResult",
    "DocumentShape",
    "EmbeddingResult",
    "FDIdentifier",
    "KeyIdentifier",
    "UsabilityBaseline",
    "UsabilityTemplate",
    "Watermark",
    "WatermarkRecord",
    "WatermarkingScheme",
    "WmXMLDecoder",
    "WmXMLEncoder",
    "XMLFD",
    "XMLKey",
    "__version__",
    "level",
    "parse",
    "parse_file",
    "pretty",
    "serialize",
    "shape",
    "write_file",
]
