"""Attack C — data re-organisation (paper §4).

"Reorganize the data according to a new schema and reorder the data
elements."  Two components, composable:

* :class:`ReorganizationAttack` — restructure the document to a
  different :class:`DocumentShape` (Figure 1's db1 -> db2), defeating
  any watermark identified by physical paths;
* :class:`SiblingShuffleAttack` — permute the order of children
  everywhere, defeating position-based identification without even
  changing the schema.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackReport
from repro.rewriting.reorganizer import reorganize
from repro.semantics.shape import DocumentShape
from repro.xmlmodel.tree import Document, Element, Text


class ReorganizationAttack(Attack):
    """Restructure to a new shape (information-preserving by default)."""

    name = "reorganization"

    def __init__(self, source_shape: DocumentShape,
                 target_shape: DocumentShape,
                 allow_lossy: bool = False, seed: int = 0) -> None:
        super().__init__(seed)
        self.source_shape = source_shape
        self.target_shape = target_shape
        self.allow_lossy = allow_lossy

    def apply(self, document: Document) -> AttackReport:
        result = reorganize(document, self.source_shape, self.target_shape,
                            allow_lossy=self.allow_lossy)
        return AttackReport(
            result.document, self.name,
            {"from": self.source_shape.name, "to": self.target_shape.name,
             "dropped": list(result.dropped_fields)},
            result.row_count)


class SiblingShuffleAttack(Attack):
    """Shuffle the child order of every element."""

    name = "sibling-shuffle"

    def apply(self, document: Document) -> AttackReport:
        attacked = document.copy()
        rng = self.rng()
        modifications = 0
        for element in attacked.iter_elements():
            significant = [
                child for child in element.children
                if not (isinstance(child, Text) and not child.value.strip())
            ]
            if len(significant) < 2:
                continue
            for child in list(element.children):
                child.detach()
            rng.shuffle(significant)
            for child in significant:
                element.append(child)
            modifications += 1
        return AttackReport(attacked, self.name, {"seed": self.seed},
                            modifications)
