"""Attack framework: seeded adversarial transformations of documents.

The demonstration (paper §4) performs four attack families on a
watermarked document: (A) data alteration, (B) data reduction, (C) data
re-organisation, and (D) redundancy removal.  Every attack here:

* is a pure function of (document, parameters, seed) — attacks never
  mutate their input, they return a transformed copy;
* reports what it did in an :class:`AttackReport` so experiments can
  correlate attack magnitude with detection/usability outcomes.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.xmlmodel.tree import Document


@dataclass
class AttackReport:
    """The attacked document plus bookkeeping about the damage done."""

    document: Document
    attack: str
    params: dict[str, Any] = field(default_factory=dict)
    modifications: int = 0

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.attack}({rendered}): {self.modifications} modifications"


class Attack(ABC):
    """Base class for adversarial transformations."""

    #: Human-readable attack family name.
    name: str = ""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def rng(self) -> random.Random:
        """A fresh RNG so repeated applications are reproducible."""
        return random.Random(f"{self.name}:{self.seed}")

    @abstractmethod
    def apply(self, document: Document) -> AttackReport:
        """Return the attacked copy of ``document``."""

    def __call__(self, document: Document) -> AttackReport:
        return self.apply(document)


class CompositeAttack(Attack):
    """Apply several attacks in sequence (a realistic adversary chains)."""

    name = "composite"

    def __init__(self, attacks: list[Attack], seed: int = 0) -> None:
        super().__init__(seed)
        if not attacks:
            raise ValueError("composite attack needs at least one attack")
        self.attacks = list(attacks)

    def apply(self, document: Document) -> AttackReport:
        current = document
        total = 0
        parts: list[str] = []
        for attack in self.attacks:
            report = attack.apply(current)
            current = report.document
            total += report.modifications
            parts.append(report.attack)
        return AttackReport(
            document=current,
            attack=self.name,
            params={"sequence": parts},
            modifications=total,
        )
