"""Attack B — data reduction (paper §4).

"Selectively use a subset of the semi-structured data and discard the
rest."  The thief republishes only part of the stolen feed, hoping the
surviving part carries too little of the watermark to prove anything.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import Attack, AttackReport
from repro.xmlmodel.tree import Document, Element


class ReductionAttack(Attack):
    """Keep a random fraction of the entity elements, drop the rest.

    ``entity_tag`` names the repeating entity (``book``, ``job``,
    ``item``...); when omitted, the direct element children of the root
    are treated as the entities.
    """

    name = "reduction"

    def __init__(self, keep_fraction: float, entity_tag: Optional[str] = None,
                 seed: int = 0) -> None:
        super().__init__(seed)
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in [0, 1]")
        self.keep_fraction = keep_fraction
        self.entity_tag = entity_tag

    def _entities(self, document: Document) -> list[Element]:
        if self.entity_tag is None:
            return document.root.child_elements()
        return list(document.iter_elements(self.entity_tag))

    def apply(self, document: Document) -> AttackReport:
        attacked = document.copy()
        rng = self.rng()
        entities = self._entities(attacked)
        keep_count = round(len(entities) * self.keep_fraction)
        keep_count = max(0, min(keep_count, len(entities)))
        keep = set(
            id(element)
            for element in rng.sample(entities, keep_count))
        modifications = 0
        for element in entities:
            if id(element) in keep or element.parent is None:
                continue
            element.detach()
            modifications += 1
        return AttackReport(
            attacked, self.name,
            {"keep_fraction": self.keep_fraction,
             "entity_tag": self.entity_tag, "seed": self.seed},
            modifications)
