"""Collusion attack: several recipients merge their fingerprinted copies.

The classical attack on fingerprinting (each recipient's copy carries a
different mark): colluders diff their copies, see exactly where the
marks can be, and build a merged copy choosing, per differing value, one
colluder's version (or the majority's).

Against WmXML fingerprints, the damage is bounded: a recipient's mark in
a value survives whenever the colluders' copies *agree* there — which
happens in every position the selection PRF marked for all of them or
none of them.  With c colluders and density 1/γ, a given recipient's
marked positions survive with probability ≥ the fraction where the
others left the value alone, so tracing degrades gracefully with
coalition size instead of collapsing (measured in the fingerprinting
tests and the EXT-1 bench).
"""

from __future__ import annotations

from collections import Counter

from repro.attacks.base import Attack, AttackReport
from repro.xmlmodel.tree import Document, Element


class CollusionAttack(Attack):
    """Merge several equally-shaped marked copies value-by-value.

    Strategies:

    * ``majority`` — most common value across copies (ties: first copy),
    * ``random``   — a random copy's value per position.

    All copies must share the original's exact structure (same tags,
    same positions) — true for fingerprinted copies of one document,
    which differ only in carrier values.
    """

    name = "collusion"

    def __init__(self, copies: list[Document], strategy: str = "majority",
                 seed: int = 0) -> None:
        super().__init__(seed)
        if len(copies) < 2:
            raise ValueError("collusion needs at least two copies")
        if strategy not in ("majority", "random"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.copies = list(copies)
        self.strategy = strategy

    @staticmethod
    def _aligned_nodes(copies: list[Document]) -> list[list]:
        """Per-copy node lists, verified to be structurally parallel."""
        node_lists = [list(copy.iter()) for copy in copies]
        lengths = {len(nodes) for nodes in node_lists}
        if len(lengths) != 1:
            raise ValueError(
                "colluding copies are not structurally aligned "
                f"(node counts differ: {sorted(len(n) for n in node_lists)})")
        for position, nodes in enumerate(zip(*node_lists)):
            kinds = {type(node) for node in nodes}
            if len(kinds) != 1:
                raise ValueError(
                    f"colluding copies diverge at node {position}: "
                    f"{[type(n).__name__ for n in nodes]}")
            if isinstance(nodes[0], Element):
                if len({node.tag for node in nodes}) != 1:
                    raise ValueError(
                        f"colluding copies diverge at node {position}: "
                        f"tags {[n.tag for n in nodes]}")
        return node_lists

    def apply(self, document: Document) -> AttackReport:
        """Merge the colluders' copies (``document`` is copy zero's base).

        The input document is only used as the structural template; the
        values come from the colluders' copies.
        """
        self._aligned_nodes(self.copies)
        merged = self.copies[0].copy()
        rng = self.rng()
        walkers = [iter(copy.iter()) for copy in self.copies]
        modifications = 0
        for target in merged.iter():
            sources = [next(walker) for walker in walkers]
            if not isinstance(target, Element):
                continue
            source_elements = [node for node in sources
                               if isinstance(node, Element)]
            if target.is_leaf():
                values = [element.text for element in source_elements]
                chosen = self._choose(values, rng)
                if chosen != target.text:
                    target.set_text(chosen)
                    modifications += 1
            for name in list(target.attributes):
                values = [element.attributes.get(name, "")
                          for element in source_elements]
                chosen = self._choose(values, rng)
                if chosen != target.attributes[name]:
                    target.set_attribute(name, chosen)
                    modifications += 1
        return AttackReport(
            merged, self.name,
            {"colluders": len(self.copies), "strategy": self.strategy,
             "seed": self.seed},
            modifications)

    def _choose(self, values: list[str], rng) -> str:
        if self.strategy == "random":
            return rng.choice(values)
        counts = Counter(values)
        best = max(counts.values())
        for value in values:
            if counts[value] == best:
                return value
        raise AssertionError("unreachable")
