"""Attack D — redundancy removal (paper §4, challenge C).

"Identify and remove redundancies within the data."  The adversary
exploits a known (or mined) functional dependency: if ``editor ->
publisher``, all publisher values for one editor are semantically the
same datum, so overwriting them with a single representative destroys
any watermark bits hidden in their *differences* — which is exactly how
FD-unaware schemes (one independent mark per occurrence) die.

WmXML survives because FD-identified carriers embed the *same* bit with
the *same* perturbation into every duplicate: unification preserves the
mark (paper §2.3).
"""

from __future__ import annotations

from collections import Counter

from repro.attacks.base import Attack, AttackReport
from repro.core.encoder import write_node_value
from repro.semantics.fds import XMLFD
from repro.xmlmodel.tree import Document
from repro.xpath import node_string_value


class RedundancyUnificationAttack(Attack):
    """Make every FD-duplicate group hold one representative value.

    Strategies:

    * ``first``    — the document-order first occurrence wins,
    * ``majority`` — the most common value wins (ties: first seen),
    * ``random``   — a random member's value wins (seeded).
    """

    name = "redundancy-unification"

    def __init__(self, fd: XMLFD, strategy: str = "majority",
                 seed: int = 0) -> None:
        super().__init__(seed)
        if strategy not in ("first", "majority", "random"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.fd = fd
        self.strategy = strategy

    def _representative(self, values: list[str], rng) -> str:
        if self.strategy == "first":
            return values[0]
        if self.strategy == "random":
            return rng.choice(values)
        counts = Counter(values)
        best = max(counts.values())
        for value in values:  # first-seen among the most common
            if counts[value] == best:
                return value
        raise AssertionError("unreachable")

    def apply(self, document: Document) -> AttackReport:
        attacked = document.copy()
        rng = self.rng()
        modifications = 0
        groups = 0
        for group in self.fd.redundancy_groups(attacked):
            if len(group) < 2:
                continue
            groups += 1
            values = [node_string_value(node) for node in group.nodes]
            representative = self._representative(values, rng)
            for node, value in zip(group.nodes, values):
                if value != representative:
                    write_node_value(node, representative)
                    modifications += 1
        return AttackReport(
            attacked, self.name,
            {"fd": self.fd.name, "strategy": self.strategy,
             "groups": groups, "seed": self.seed},
            modifications)
