"""Attack A — data alteration (paper §4).

"Modify the elements or the structures of the semi-structured data to
destroy the embedded watermark."

Three variants:

* :class:`ValueAlterationAttack` — rewrite a fraction of leaf/attribute
  values with plausible noise (numbers get re-randomised, text gets
  shuffled words).  This targets the watermark *bits*.
* :class:`NodeDeletionAttack` — delete a fraction of elements outright,
  structure included.  This targets both bits and identifiers.
* :class:`NodeInsertionAttack` — inject fabricated sibling elements,
  diluting the data (and any detector that re-derives candidates).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.attacks.base import Attack, AttackReport
from repro.xmlmodel.tree import Document, Element, Text


def _leaf_slots(document: Document) -> list[tuple]:
    """All mutable value slots: leaf elements and attributes."""
    slots: list[tuple] = []
    for element in document.iter_elements():
        if element.is_leaf() and element.text.strip():
            slots.append(("text", element))
        for name in element.attributes:
            slots.append(("attr", element, name))
    return slots


def _perturb_value(value: str, rng: random.Random) -> str:
    """Plausible-looking replacement for a value (type-aware noise)."""
    stripped = value.strip()
    try:
        number = float(stripped)
    except ValueError:
        number = None
    if number is not None:
        scale = abs(number) if number else 1.0
        noised = number + rng.uniform(0.5, 1.5) * scale * rng.choice((-1, 1))
        if stripped.lstrip("+-").isdigit():
            return str(int(round(noised)))
        return f"{noised:.2f}"
    words = stripped.split()
    if len(words) > 1:
        rng.shuffle(words)
        return " ".join(words) + " (edited)"
    return stripped + "-altered"


class ValueAlterationAttack(Attack):
    """Rewrite a fraction of values with noise."""

    name = "value-alteration"

    def __init__(self, rate: float, seed: int = 0) -> None:
        super().__init__(seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate

    def apply(self, document: Document) -> AttackReport:
        attacked = document.copy()
        rng = self.rng()
        modifications = 0
        for slot in _leaf_slots(attacked):
            if rng.random() >= self.rate:
                continue
            if slot[0] == "text":
                element = slot[1]
                element.set_text(_perturb_value(element.text, rng))
            else:
                _, element, attr_name = slot
                element.set_attribute(
                    attr_name,
                    _perturb_value(element.attributes[attr_name], rng))
            modifications += 1
        return AttackReport(attacked, self.name,
                            {"rate": self.rate, "seed": self.seed},
                            modifications)


class NodeDeletionAttack(Attack):
    """Delete a fraction of elements (optionally restricted by tag)."""

    name = "node-deletion"

    def __init__(self, rate: float, tag: Optional[str] = None,
                 seed: int = 0) -> None:
        super().__init__(seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate
        self.tag = tag

    def apply(self, document: Document) -> AttackReport:
        attacked = document.copy()
        rng = self.rng()
        candidates = [
            element for element in attacked.iter_elements(self.tag)
            if element.parent is not None
        ]
        modifications = 0
        for element in candidates:
            if rng.random() >= self.rate:
                continue
            if element.parent is None:
                continue  # an ancestor was already deleted
            element.detach()
            modifications += 1
        return AttackReport(
            attacked, self.name,
            {"rate": self.rate, "tag": self.tag, "seed": self.seed},
            modifications)


class NodeInsertionAttack(Attack):
    """Insert fabricated clones next to a fraction of elements."""

    name = "node-insertion"

    def __init__(self, rate: float, seed: int = 0) -> None:
        super().__init__(seed)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate

    def apply(self, document: Document) -> AttackReport:
        attacked = document.copy()
        rng = self.rng()
        targets = [
            element for element in attacked.iter_elements()
            if element.parent is not None and rng.random() < self.rate
        ]
        modifications = 0
        for element in targets:
            clone = element.copy()
            for leaf in clone.iter_elements():
                if isinstance(leaf, Element) and leaf.is_leaf() \
                        and leaf.text.strip():
                    leaf.set_text(_perturb_value(leaf.text, rng))
            for name in list(clone.attributes):
                clone.set_attribute(
                    name, _perturb_value(clone.attributes[name], rng))
            parent = element.parent
            parent.insert(element.index_in_parent() + 1, clone)
            modifications += 1
        return AttackReport(attacked, self.name,
                            {"rate": self.rate, "seed": self.seed},
                            modifications)
