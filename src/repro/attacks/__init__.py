"""The §4 attack suite: alteration, reduction, reorganisation, redundancy.

All attacks are pure (input documents are never mutated), seeded, and
report their damage via :class:`~repro.attacks.base.AttackReport` so
experiments can sweep attack magnitude against detection and usability.
"""

from repro.attacks.alteration import (
    NodeDeletionAttack,
    NodeInsertionAttack,
    ValueAlterationAttack,
)
from repro.attacks.base import Attack, AttackReport, CompositeAttack
from repro.attacks.collusion import CollusionAttack
from repro.attacks.reduction import ReductionAttack
from repro.attacks.redundancy import RedundancyUnificationAttack
from repro.attacks.reorganization import (
    ReorganizationAttack,
    SiblingShuffleAttack,
)

__all__ = [
    "Attack",
    "AttackReport",
    "CollusionAttack",
    "CompositeAttack",
    "NodeDeletionAttack",
    "NodeInsertionAttack",
    "RedundancyUnificationAttack",
    "ReductionAttack",
    "ReorganizationAttack",
    "SiblingShuffleAttack",
    "ValueAlterationAttack",
]
