"""Fingerprinting: per-recipient watermarks and traitor tracing.

The paper motivates watermarking with "prove his ownership or **trace
any reproduction** of the data".  Tracing needs per-copy marks: each
recipient receives the data watermarked with a *recipient-specific* key
and message (the fingerprint).  When a copy leaks, the owner detects
every issued fingerprint against it; the recipient whose fingerprint
verifies (lowest p-value) is the traitor.

Key separation keeps this cheap and safe:

* recipient key = HMAC(master key, recipient id) — one secret to store;
* recipient message = the recipient id itself — self-describing
  evidence;
* because selection is keyed per recipient, different copies mark
  *different* element subsets, which is what gives collusion attacks
  (averaging several copies — see
  :class:`~repro.attacks.collusion.CollusionAttack`) only partial
  erasure: marks in positions where the colluders' copies agree
  survive verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.crypto import KeyedPRF
from repro.core.decoder import DetectionResult, WmXMLDecoder
from repro.core.encoder import WmXMLEncoder
from repro.core.record import WatermarkRecord
from repro.core.scheme import WatermarkingScheme
from repro.core.watermark import Watermark
from repro.errors import RecordFormatError
from repro.semantics.shape import DocumentShape
from repro.serialize import VersionedDocument
from repro.xmlmodel.tree import Document


@dataclass
class IssuedCopy:
    """One recipient's fingerprinted copy and its detection record."""

    recipient: str
    document: Document
    record: WatermarkRecord


@dataclass
class TraceResult(VersionedDocument):
    """Outcome of tracing a leaked copy against every issued fingerprint."""

    format_tag = "wmxml-trace-v1"
    format_error = RecordFormatError

    verdicts: dict[str, DetectionResult] = field(default_factory=dict)

    @property
    def accused(self) -> list[str]:
        """Recipients whose fingerprint verifies in the leaked copy.

        Strongest evidence first; equal p-values tie-break on the
        recipient name, so a persisted trace is byte-stable across runs
        (dict insertion order must never decide who tops the list).
        """
        return sorted(
            (name for name, outcome in self.verdicts.items()
             if outcome.detected),
            key=lambda name: (self.verdicts[name].p_value, name))

    @property
    def prime_suspect(self) -> Optional[str]:
        accused = self.accused
        return accused[0] if accused else None

    def to_dict(self) -> dict:
        return {
            "format": self.format_tag,
            "verdicts": {name: outcome.to_dict()
                         for name, outcome in sorted(self.verdicts.items())},
            "accused": self.accused,
            "prime_suspect": self.prime_suspect,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceResult":
        cls._check_format(data)
        try:
            verdicts = {name: DetectionResult.from_dict(outcome)
                        for name, outcome in data["verdicts"].items()}
        except (KeyError, TypeError, AttributeError) as error:
            raise RecordFormatError(
                f"malformed trace result: {error}") from error
        return cls(verdicts=verdicts)

    def __str__(self) -> str:
        if not self.accused:
            return "trace: no issued fingerprint verifies"
        parts = ", ".join(
            f"{name} (p={self.verdicts[name].p_value:.2e})"
            for name in self.accused)
        return f"trace: {parts}"


class Fingerprinter:
    """Issue fingerprinted copies and trace leaks back to recipients."""

    def __init__(self, scheme: WatermarkingScheme,
                 master_key: Union[str, bytes],
                 alpha: float = 1e-3) -> None:
        self.scheme = scheme
        self._master = KeyedPRF(master_key)
        self.alpha = alpha
        self._issued: dict[str, WatermarkRecord] = {}

    def recipient_key(self, recipient: str) -> bytes:
        """The derived secret key for one recipient."""
        return self._master.digest("fingerprint-key", recipient)

    def issue(self, document: Document, recipient: str) -> IssuedCopy:
        """Watermark a copy for ``recipient`` and remember its record."""
        if not recipient:
            raise ValueError("recipient id must not be empty")
        encoder = WmXMLEncoder(self.scheme, self.recipient_key(recipient))
        result = encoder.embed(document,
                               Watermark.from_message(recipient))
        self._issued[recipient] = result.record
        return IssuedCopy(recipient, result.document, result.record)

    @property
    def issued_recipients(self) -> list[str]:
        return sorted(self._issued)

    def trace(self, suspected: Document,
              shape: Optional[DocumentShape] = None,
              indexed: bool = True) -> TraceResult:
        """Detect every issued fingerprint against a leaked copy."""
        target_shape = shape or self.scheme.shape
        result = TraceResult()
        for recipient, record in self._issued.items():
            decoder = WmXMLDecoder(self.recipient_key(recipient),
                                   alpha=self.alpha)
            result.verdicts[recipient] = decoder.detect(
                suspected, record, target_shape,
                expected=Watermark.from_message(recipient),
                indexed=indexed)
        return result
