"""The persisted watermark record: the query set Q plus metadata.

Paper §2.2, step 1: "Create queries as identifiers of these data
elements or structure units, and safeguard the set of queries (denoted
by Q) along with the secret key."

A :class:`WatermarkRecord` is that artefact.  It is JSON-serialisable so
the owner can store it next to (but never inside) the published data.
It contains **no secret material**: identities, logical queries, bit
indices and algorithm parameters are all safe to keep in escrow — an
adversary holding the record but not the key still cannot forge or
surgically erase the mark, because embedding decisions (digit
directions, byte offsets, domain orderings) all require the key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Optional

from repro.errors import RecordFormatError
from repro.rewriting.logical import LogicalQuery
from repro.serialize import VersionedDocument

#: Version tag of the persisted record format.
RECORD_FORMAT = "wmxml-record-v1"


@dataclass(frozen=True)
class WatermarkQuery:
    """One identity query of Q with its embedding bookkeeping."""

    identity: str
    query: LogicalQuery
    bit_index: int
    field: str
    algorithm: str
    params: tuple[tuple[str, Any], ...] = ()

    @property
    def param_map(self) -> dict[str, Any]:
        return {name: value for name, value in self.params}

    @cached_property
    def algorithm_cache_key(self) -> str:
        """Stable key identifying ``(algorithm, params)`` plug-in state."""
        return self.algorithm + repr(sorted(self.params))

    def __getstate__(self) -> dict:
        # Records ride along with every document a pool worker detects;
        # keep the pickle lean by dropping memoised derived state (the
        # cached_property above), which the worker recomputes on use.
        state = dict(self.__dict__)
        state.pop("algorithm_cache_key", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def to_dict(self) -> dict:
        return {
            "identity": self.identity,
            "query": self.query.to_dict(),
            "bit_index": self.bit_index,
            "field": self.field,
            "algorithm": self.algorithm,
            "params": [[name, value] for name, value in self.params],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WatermarkQuery":
        return cls(
            identity=data["identity"],
            query=LogicalQuery.from_dict(data["query"]),
            bit_index=data["bit_index"],
            field=data["field"],
            algorithm=data["algorithm"],
            params=tuple((name, value) for name, value in data["params"]),
        )


@dataclass
class WatermarkRecord(VersionedDocument):
    """Everything the decoder needs besides the secret key and the data."""

    format_tag = RECORD_FORMAT
    format_error = RecordFormatError

    gamma: int
    nbits: int
    shape_name: str
    key_fingerprint: str
    queries: list[WatermarkQuery] = field(default_factory=list)
    #: Tenancy provenance, stamped by a multi-tenant ``WmXMLSystem``:
    #: which tenant's derived key embedded this mark, and under which
    #: master-key generation — the hooks that let detections keep
    #: verifying after key rotation.  ``None``/``None`` for classic
    #: single-key embeds, and *omitted* from the serialized form then,
    #: so pre-tenancy records and golden vectors are byte-identical.
    tenant: Optional[str] = None
    key_id: Optional[int] = None

    def to_dict(self) -> dict:
        data = {
            "format": RECORD_FORMAT,
            "gamma": self.gamma,
            "nbits": self.nbits,
            "shape_name": self.shape_name,
            "key_fingerprint": self.key_fingerprint,
            "queries": [query.to_dict() for query in self.queries],
        }
        if self.tenant is not None:
            data["tenant"] = self.tenant
        if self.key_id is not None:
            data["key_id"] = self.key_id
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WatermarkRecord":
        cls._check_format(data)
        try:
            return cls(
                gamma=data["gamma"],
                nbits=data["nbits"],
                shape_name=data["shape_name"],
                key_fingerprint=data["key_fingerprint"],
                queries=[WatermarkQuery.from_dict(q)
                         for q in data["queries"]],
                tenant=data.get("tenant"),
                key_id=data.get("key_id"),
            )
        except RecordFormatError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            # A record with the right format tag but missing/mangled
            # fields is malformed client input (wire-reachable via
            # POST /v1/detect), not an internal fault.
            raise RecordFormatError(
                f"malformed record document: {error}") from error

    def __len__(self) -> int:
        return len(self.queries)


def all_same_record(records) -> bool:
    """True when every entry is the same record — the one-record-
    many-copies batch shape.

    Identity alone is not enough: pickle's memo already collapses one
    object repeated within a payload, so the real saving is equal-but-
    *distinct* records (the same ``record.json`` loaded per suspected
    copy) — hence identity-then-equality.  Shared by the pooled
    engine's chunk tasks and the client SDK's wire form, so both
    always agree on what "shared" means.
    """
    if not records:
        return False
    first = records[0]
    return all(record is first or record == first for record in records)
