"""The persisted watermark record: the query set Q plus metadata.

Paper §2.2, step 1: "Create queries as identifiers of these data
elements or structure units, and safeguard the set of queries (denoted
by Q) along with the secret key."

A :class:`WatermarkRecord` is that artefact.  It is JSON-serialisable so
the owner can store it next to (but never inside) the published data.
It contains **no secret material**: identities, logical queries, bit
indices and algorithm parameters are all safe to keep in escrow — an
adversary holding the record but not the key still cannot forge or
surgically erase the mark, because embedding decisions (digit
directions, byte offsets, domain orderings) all require the key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Optional

from repro.rewriting.logical import LogicalQuery


@dataclass(frozen=True)
class WatermarkQuery:
    """One identity query of Q with its embedding bookkeeping."""

    identity: str
    query: LogicalQuery
    bit_index: int
    field: str
    algorithm: str
    params: tuple[tuple[str, Any], ...] = ()

    @property
    def param_map(self) -> dict[str, Any]:
        return {name: value for name, value in self.params}

    @cached_property
    def algorithm_cache_key(self) -> str:
        """Stable key identifying ``(algorithm, params)`` plug-in state."""
        return self.algorithm + repr(sorted(self.params))

    def to_dict(self) -> dict:
        return {
            "identity": self.identity,
            "query": self.query.to_dict(),
            "bit_index": self.bit_index,
            "field": self.field,
            "algorithm": self.algorithm,
            "params": [[name, value] for name, value in self.params],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WatermarkQuery":
        return cls(
            identity=data["identity"],
            query=LogicalQuery.from_dict(data["query"]),
            bit_index=data["bit_index"],
            field=data["field"],
            algorithm=data["algorithm"],
            params=tuple((name, value) for name, value in data["params"]),
        )


@dataclass
class WatermarkRecord:
    """Everything the decoder needs besides the secret key and the data."""

    gamma: int
    nbits: int
    shape_name: str
    key_fingerprint: str
    queries: list[WatermarkQuery] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "format": "wmxml-record-v1",
            "gamma": self.gamma,
            "nbits": self.nbits,
            "shape_name": self.shape_name,
            "key_fingerprint": self.key_fingerprint,
            "queries": [query.to_dict() for query in self.queries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WatermarkRecord":
        if data.get("format") != "wmxml-record-v1":
            raise ValueError("not a WmXML watermark record")
        return cls(
            gamma=data["gamma"],
            nbits=data["nbits"],
            shape_name=data["shape_name"],
            key_fingerprint=data["key_fingerprint"],
            queries=[WatermarkQuery.from_dict(q) for q in data["queries"]],
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "WatermarkRecord":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "WatermarkRecord":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def __len__(self) -> int:
        return len(self.queries)
