"""Identifier creation from keys and functional dependencies (paper §2.3).

This is the heart of WmXML.  Carrier fields (the fields with watermark
bandwidth) are grouped into *carrier groups*, each with an identifier
that is

* **differentiating** — distinct data elements get distinct identifiers
  (built from entity-key values), so the scarce bandwidth is fully used;
* **redundancy-aware** — duplicates implied by an FD share one
  identifier (built from the FD's lhs values), so an adversary who makes
  all duplicates identical has not erased anything;
* **usability-coupled** — the identifier doubles as a
  :class:`~repro.rewriting.logical.LogicalQuery`; destroying it means
  destroying the key/FD values user queries rely on.

Two identifier rules implement this:

* :class:`KeyIdentifier` — identity from the entity key fields; one
  group per entity;
* :class:`FDIdentifier` — identity from the FD lhs fields; one group per
  lhs value, folding every duplicate rhs occurrence into it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from json.encoder import encode_basestring as _json_string
from typing import Any, Mapping, Optional, Sequence, Union

from repro.perf.profiler import profiled
from repro.rewriting.logical import LogicalQuery
from repro.semantics.errors import RecordError
from repro.semantics.records import Row
from repro.semantics.shape import DocumentShape
from repro.xpath import NodeLike


@dataclass(frozen=True)
class KeyIdentifier:
    """Identify carrier instances by the values of the entity key."""

    fields: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise RecordError("key identifier needs at least one field")

    def kind(self) -> str:
        return "key"


@dataclass(frozen=True)
class FDIdentifier:
    """Identify (and fold) carrier instances by an FD's lhs values."""

    fields: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise RecordError("FD identifier needs at least one field")

    def kind(self) -> str:
        return "fd"


IdentifierRule = Union[KeyIdentifier, FDIdentifier]

_IDENTIFIER_KINDS = {"key": KeyIdentifier, "fd": FDIdentifier}


def identifier_to_dict(rule: IdentifierRule) -> dict:
    """Declarative form of an identifier rule."""
    return {"kind": rule.kind(), "fields": list(rule.fields)}


def identifier_from_dict(data: dict) -> IdentifierRule:
    """Rebuild an identifier rule from its declarative form."""
    try:
        rule_cls = _IDENTIFIER_KINDS[data["kind"]]
    except KeyError:
        raise RecordError(
            f"unknown identifier kind {data.get('kind')!r}; "
            f"expected one of {sorted(_IDENTIFIER_KINDS)}")
    return rule_cls(tuple(data["fields"]))


@dataclass(frozen=True)
class CarrierSpec:
    """One watermark-capable field and how to identify its instances.

    ``algorithm``/``params`` name the plug-in that perturbs the value;
    ``identifier`` decides how instances are grouped (and therefore how
    redundancy is handled).  The carrier field must not belong to its
    own identifier — perturbing a value must never change its identity.
    """

    field: str
    algorithm: str
    identifier: IdentifierRule
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        field_name: str,
        algorithm: str,
        identifier: IdentifierRule,
        params: Optional[Mapping[str, Any]] = None,
    ) -> "CarrierSpec":
        if field_name in identifier.fields:
            raise RecordError(
                f"carrier field {field_name!r} may not be part of its own "
                "identifier (perturbation would destroy the identity)")
        items = tuple(sorted((params or {}).items(),
                             key=lambda item: item[0]))
        return cls(field_name, algorithm, identifier, items)

    @property
    def param_map(self) -> dict[str, Any]:
        return {name: value for name, value in self.params}

    @cached_property
    def algorithm_cache_key(self) -> str:
        """Stable key identifying ``(algorithm, params)`` plug-in state.

        Precomputed once per spec so the encoder's per-slot plug-in
        lookup is a dict hit instead of a sort + ``repr`` per call.
        """
        return self.algorithm + repr(sorted(self.params))

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> dict:
        data: dict = {
            "field": self.field,
            "algorithm": self.algorithm,
            "identifier": identifier_to_dict(self.identifier),
        }
        if self.params:
            data["params"] = [[name, value] for name, value in self.params]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CarrierSpec":
        return cls.create(
            data["field"],
            data["algorithm"],
            identifier_from_dict(data["identifier"]),
            {name: value for name, value in data.get("params", ())},
        )


def identity_string(field_name: str,
                    bindings: Sequence[tuple[str, str]]) -> str:
    """Canonical, organisation-independent identity of a carrier group.

    Built purely from field names and semantic values — never from
    positions or paths — which is exactly why WmXML identities survive
    reorganisation.  JSON encoding makes the string unambiguous no
    matter what characters the values contain.

    The string is assembled directly from the C-accelerated JSON string
    encoder rather than through ``json.dumps`` — identity strings are
    built once per shredded row, so the generic encoder's dispatch
    overhead is measurable.  Output is byte-identical to
    ``json.dumps([field_name, sorted(bindings)], ensure_ascii=False,
    separators=(",", ":"))`` (locked by the test suite).
    """
    pairs = ",".join(
        f"[{_json_string(name)},{_json_string(value)}]"
        for name, value in sorted(bindings))
    return f"[{_json_string(field_name)},[{pairs}]]"


@dataclass
class CarrierGroup:
    """All instances of one carrier that share an identity.

    For key-identified carriers the group usually has one node; for
    FD-identified carriers it contains every duplicate of the rhs value
    for one lhs value.
    """

    carrier: CarrierSpec
    identity: str
    query: LogicalQuery
    nodes: list[NodeLike]
    values: list[str]

    @property
    def size(self) -> int:
        return len(self.nodes)

    def is_consistent(self) -> bool:
        """True when all duplicate instances currently agree."""
        return len(set(self.values)) <= 1


@profiled("identity.group")
def build_carrier_groups(
    rows: Sequence[Row],
    carriers: Sequence[CarrierSpec],
    shape: DocumentShape,
) -> list[CarrierGroup]:
    """Group carrier-field instances by identity over the shredded rows.

    Rows missing the carrier field or any identifier field contribute
    nothing (they have no capacity).  Node lists are deduplicated
    because multi-field expansion makes several rows share nodes.
    """
    for carrier in carriers:
        missing = [
            name for name in (carrier.field,) + carrier.identifier.fields
            if name not in shape.placements
        ]
        if missing:
            raise RecordError(
                f"shape {shape.name!r} does not materialise {missing!r} "
                f"needed by carrier {carrier.field!r}")

    groups: list[CarrierGroup] = []
    for carrier in carriers:
        carrier_field = carrier.field
        identifier_fields = carrier.identifier.fields
        by_identity: dict[str, CarrierGroup] = {}
        order: list[str] = []
        # Hash-set dedupe per group: tree nodes hash by object identity,
        # AttributeNode by (owner, name) — both correct here because
        # shredding re-wraps the same attribute in fresh AttributeNode
        # instances for every row.  (A linear `node in group.nodes` scan
        # here made grouping O(n²) for large FD groups.)
        seen_nodes: dict[str, set] = {}
        for row in rows:
            values = row.values
            if carrier_field not in values:
                continue
            if any(name not in values for name in identifier_fields):
                continue
            bindings = [(name, values[name]) for name in identifier_fields]
            identity = identity_string(carrier_field, bindings)
            group = by_identity.get(identity)
            if group is None:
                group = CarrierGroup(
                    carrier=carrier,
                    identity=identity,
                    query=LogicalQuery.create(
                        carrier_field, dict(bindings)),
                    nodes=[],
                    values=[],
                )
                by_identity[identity] = group
                order.append(identity)
                seen_nodes[identity] = set()
            node = row.nodes[carrier_field]
            seen = seen_nodes[identity]
            if node not in seen:
                seen.add(node)
                group.nodes.append(node)
                group.values.append(values[carrier_field])
        groups.extend(by_identity[identity] for identity in order)
    return groups
