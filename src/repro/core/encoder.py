"""Watermark insertion (paper §2.2, step 2; the Encoder of Figure 4).

Pipeline::

    shred document -> build carrier groups (identity.py)
                   -> keyed 1-in-gamma selection (selection.py)
                   -> per-type plug-in embedding (algorithms/)
                   -> marked document + WatermarkRecord (the query set Q)

Every instance in a selected group receives the *same* bit through the
*same* identity-bound PRF stream, so FD duplicates end up bit-for-bit
identical — the property that defeats the redundancy-removal attack.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional, Union

from repro.core.algorithms import WatermarkAlgorithm, create_algorithm
from repro.core.crypto import KeyedPRF
from repro.core.identity import build_carrier_groups
from repro.core.record import WatermarkQuery, WatermarkRecord
from repro.core.scheme import WatermarkingScheme
from repro.core.selection import SelectionStats, select_groups
from repro.core.watermark import Watermark
from repro.perf.profiler import profiled
from repro.xmlmodel.tree import Document, Element, Text
from repro.xpath import NodeLike
from repro.xpath.values import AttributeNode


def write_node_value(node: NodeLike, value: str) -> None:
    """Write a new value through whichever node kind carries it."""
    if isinstance(node, AttributeNode):
        node.set_value(value)
    elif isinstance(node, Element):
        node.set_text(value)
    elif isinstance(node, Text):
        node.value = value
    else:
        raise TypeError(f"cannot write value into {type(node).__name__}")


def read_node_value(node: NodeLike) -> str:
    """Read the current value of a carrier node."""
    if isinstance(node, AttributeNode):
        return node.value
    if isinstance(node, Element):
        return node.text.strip()
    if isinstance(node, Text):
        return node.value.strip()
    raise TypeError(f"cannot read value from {type(node).__name__}")


@dataclass
class EmbeddingStats:
    """What the encoder did, for capacity/usability analysis."""

    capacity_groups: int = 0
    selected_groups: int = 0
    embedded_groups: int = 0
    nodes_modified: int = 0
    nodes_unchanged: int = 0
    inapplicable_values: int = 0
    per_field: dict[str, int] = field(default_factory=dict)
    total_distortion: float = 0.0
    gamma: int = 0

    @property
    def utilisation(self) -> float:
        if self.capacity_groups == 0:
            return 0.0
        return self.selected_groups / self.capacity_groups

    @property
    def mean_distortion(self) -> float:
        touched = self.nodes_modified + self.nodes_unchanged
        return self.total_distortion / touched if touched else 0.0

    def to_dict(self) -> dict:
        """JSON-safe form; what the service ships next to the record.

        ``asdict`` so a future field cannot be silently dropped from
        the wire form.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EmbeddingStats":
        try:
            return cls(**data)
        except TypeError as error:
            from repro.errors import RecordFormatError

            raise RecordFormatError(
                f"malformed embedding stats: {error}") from error


@dataclass
class EmbeddingResult:
    """Marked document, the query set Q, and statistics.

    Exactly one of ``document``/``xml`` may be the primary output:
    batch embedding with ``output="xml"`` serialises the marked tree
    where it was built (inside a pool worker, avoiding the cost of
    pickling a whole tree back to the parent) and ships the markup
    text instead — ``document`` is then ``None`` and ``xml`` holds the
    serialised form.  :meth:`to_document` converts either way.
    """

    document: Optional[Document]
    record: WatermarkRecord
    stats: EmbeddingStats
    xml: Optional[str] = None

    def to_document(self) -> Document:
        """The marked tree, parsing ``xml`` when that is all we carry."""
        if self.document is not None:
            return self.document
        if self.xml is None:
            raise ValueError("embedding result carries neither a document "
                             "nor serialised XML")
        from repro.xmlmodel.parser import parse

        return parse(self.xml, strip_whitespace=True)

    def to_xml(self) -> str:
        """The marked document as markup, serialising when needed."""
        if self.xml is not None:
            return self.xml
        from repro.xmlmodel.serializer import serialize

        return serialize(self.to_document())


class WmXMLEncoder:
    """The encoder component of the WmXML architecture."""

    def __init__(self, scheme: WatermarkingScheme,
                 secret_key: Union[str, bytes]) -> None:
        self.scheme = scheme
        self.prf = KeyedPRF(secret_key)
        self._algorithms: dict[str, WatermarkAlgorithm] = {}

    def _algorithm(self, name: str, params: dict,
                   cache_key: str) -> WatermarkAlgorithm:
        """Plug-in lookup keyed by the spec's precomputed cache key."""
        algorithm = self._algorithms.get(cache_key)
        if algorithm is None:
            algorithm = create_algorithm(name, params)
            self._algorithms[cache_key] = algorithm
        return algorithm

    # Pickling ships only the configuration (scheme + PRF, itself lean —
    # see KeyedPRF.__getstate__); the plug-in cache is derived state a
    # pool worker rebuilds lazily on its first document.

    def __getstate__(self) -> dict:
        return {"scheme": self.scheme, "prf": self.prf}

    def __setstate__(self, state: dict) -> None:
        self.scheme = state["scheme"]
        self.prf = state["prf"]
        self._algorithms = {}

    # -- public API ------------------------------------------------------------

    @profiled("encoder.embed")
    def embed(self, document: Document, watermark: Watermark,
              in_place: bool = False) -> EmbeddingResult:
        """Embed ``watermark`` and return the marked copy plus Q.

        With ``in_place=True`` the input document itself is modified
        (used by the benchmarks to avoid copy overhead).
        """
        target = document if in_place else document.copy()
        rows = self.scheme.shape.shred(target)
        groups = build_carrier_groups(rows, self.scheme.carriers,
                                      self.scheme.shape)
        slots, selection_stats = select_groups(
            groups, self.prf, self.scheme.gamma, len(watermark))

        stats = EmbeddingStats(
            capacity_groups=selection_stats.candidates,
            selected_groups=selection_stats.selected,
            gamma=self.scheme.gamma,
        )
        record = WatermarkRecord(
            gamma=self.scheme.gamma,
            nbits=len(watermark),
            shape_name=self.scheme.shape.name,
            key_fingerprint=self.prf.fingerprint(),
        )

        for slot in slots:
            group = slot.group
            carrier = group.carrier
            algorithm = self._algorithm(carrier.algorithm, carrier.param_map,
                                        carrier.algorithm_cache_key)
            bit = watermark.bits[slot.bit_index]
            embedded_any = False
            for node, value in zip(group.nodes, group.values):
                if not algorithm.applicable(value):
                    stats.inapplicable_values += 1
                    continue
                marked = algorithm.embed(value, bit, self.prf, group.identity)
                stats.total_distortion += algorithm.distortion(value, marked)
                if marked != value:
                    write_node_value(node, marked)
                    stats.nodes_modified += 1
                else:
                    stats.nodes_unchanged += 1
                embedded_any = True
            if not embedded_any:
                continue
            stats.embedded_groups += 1
            stats.per_field[carrier.field] = (
                stats.per_field.get(carrier.field, 0) + 1)
            record.queries.append(WatermarkQuery(
                identity=group.identity,
                query=group.query,
                bit_index=slot.bit_index,
                field=carrier.field,
                algorithm=carrier.algorithm,
                params=carrier.params,
            ))
        return EmbeddingResult(document=target, record=record, stats=stats)
