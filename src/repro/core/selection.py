"""Keyed selection of carrier groups (paper §2.2, step 1).

"A secret key is used to select a number of data elements or structure
units to embed watermark bits."  Selection follows the Agrawal–Kiernan
recipe the paper cites: a group is selected when
``HMAC(key, identity) mod gamma == 0`` — on average 1 in ``gamma``
groups — and the selected group's watermark bit index is
``HMAC(key, identity) mod nbits``.

Both decisions depend only on (key, identity), so the decoder makes the
identical decisions at detection time without any shared state beyond
the stored query set Q.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.crypto import KeyedPRF
from repro.core.identity import CarrierGroup
from repro.perf.profiler import profiled


@dataclass
class EmbeddingSlot:
    """A selected carrier group with its assigned watermark bit index."""

    group: CarrierGroup
    bit_index: int


@dataclass(frozen=True)
class SelectionStats:
    """Bookkeeping for the capacity analysis (experiment E3)."""

    candidates: int
    selected: int
    gamma: int

    @property
    def utilisation(self) -> float:
        """Selected fraction; expectation is 1/gamma."""
        if self.candidates == 0:
            return 0.0
        return self.selected / self.candidates


@profiled("selection.select")
def select_groups(
    groups: Sequence[CarrierGroup],
    prf: KeyedPRF,
    gamma: int,
    nbits: int,
) -> tuple[list[EmbeddingSlot], SelectionStats]:
    """Apply the keyed 1-in-gamma selection to ``groups``.

    Selection and bit assignment run through the PRF's batch APIs
    (:meth:`~repro.core.crypto.KeyedPRF.selects_many` /
    :meth:`~repro.core.crypto.KeyedPRF.bit_indices`), amortising the
    per-call overhead across all candidate groups.
    """
    selected_flags = prf.selects_many(
        (group.identity for group in groups), gamma)
    selected_groups = [
        group for group, chosen in zip(groups, selected_flags) if chosen
    ]
    indices = prf.bit_indices(
        (group.identity for group in selected_groups), nbits)
    slots = [
        EmbeddingSlot(group=group, bit_index=bit_index)
        for group, bit_index in zip(selected_groups, indices)
    ]
    stats = SelectionStats(
        candidates=len(groups), selected=len(slots), gamma=gamma)
    return slots, stats
