"""The watermarking scheme: the user's inputs to encoder and decoder.

Figure 4 of the paper shows the user handing the system a watermark, a
secret key, query templates, and the keys/FDs discovered from the
schema.  A :class:`WatermarkingScheme` bundles the data-dependent parts:

* the document's :class:`~repro.semantics.shape.DocumentShape`,
* the carrier specs (capacity fields + identifier rules + plug-ins),
* the usability templates,
* the selection density ``gamma``.

The scheme validates itself eagerly so misconfigurations (unknown
fields, carrier inside its own identifier, unknown plug-in name) fail at
construction, not mid-embedding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.algorithms import create_algorithm
from repro.core.identity import CarrierSpec
from repro.core.usability import UsabilityTemplate
from repro.errors import SchemeFormatError, WmXMLError
from repro.semantics.errors import RecordError
from repro.semantics.shape import DocumentShape
from repro.serialize import VersionedDocument

#: Version tag of the declarative scheme format.
SCHEME_FORMAT = "wmxml-scheme-v1"


@dataclass
class WatermarkingScheme(VersionedDocument):
    """User configuration for one watermarking deployment."""

    format_tag = SCHEME_FORMAT
    format_error = SchemeFormatError

    shape: DocumentShape
    carriers: list[CarrierSpec]
    templates: list[UsabilityTemplate] = field(default_factory=list)
    gamma: int = 4

    def __post_init__(self) -> None:
        if self.gamma < 1:
            raise RecordError("gamma must be >= 1")
        if not self.carriers:
            raise RecordError("a scheme needs at least one carrier field")
        known = set(self.shape.placements)
        for carrier in self.carriers:
            needed = {carrier.field, *carrier.identifier.fields}
            missing = sorted(needed - known)
            if missing:
                raise RecordError(
                    f"carrier {carrier.field!r} references fields "
                    f"{missing!r} absent from shape {self.shape.name!r}")
            # Fail fast on unknown plug-ins / bad parameters.
            create_algorithm(carrier.algorithm, carrier.param_map)
        for template in self.templates:
            missing = sorted(
                ({template.target, *template.conditions}) - known)
            if missing:
                raise RecordError(
                    f"template {template.name!r} references fields "
                    f"{missing!r} absent from shape {self.shape.name!r}")

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> dict:
        """The versioned declarative form: a deployment as a document.

        Everything the scheme holds — shape (with its nesting levels),
        carriers (with identifier rules and algorithm parameters),
        usability templates, and gamma — round-trips through this dict,
        so a deployment can live in version control as a JSON artefact
        instead of Python code.
        """
        return {
            "format": SCHEME_FORMAT,
            "shape": self.shape.to_dict(),
            "carriers": [carrier.to_dict() for carrier in self.carriers],
            "templates": [template.to_dict() for template in self.templates],
            "gamma": self.gamma,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WatermarkingScheme":
        cls._check_format(data)
        try:
            return cls(
                shape=DocumentShape.from_dict(data["shape"]),
                carriers=[CarrierSpec.from_dict(entry)
                          for entry in data["carriers"]],
                templates=[UsabilityTemplate.from_dict(entry)
                           for entry in data.get("templates", ())],
                gamma=data.get("gamma", 4),
            )
        except SchemeFormatError:
            raise
        except (KeyError, TypeError, ValueError, WmXMLError) as error:
            # Everything a malformed document can trip — missing keys,
            # wrong value shapes, and the scheme's own eager semantic
            # validation (RecordError, AlgorithmError...) — surfaces as
            # the one documented loading error.
            raise SchemeFormatError(
                f"malformed scheme document: {error}") from error

    def carrier_for(self, field_name: str) -> CarrierSpec:
        for carrier in self.carriers:
            if carrier.field == field_name:
                return carrier
        raise RecordError(f"no carrier declared for field {field_name!r}")

    def describe(self) -> str:
        """Multi-line human-readable summary (used by the CLI)."""
        lines = [
            f"shape: {self.shape!r}",
            f"gamma: {self.gamma}",
            "carriers:",
        ]
        for carrier in self.carriers:
            rule = carrier.identifier
            lines.append(
                f"  - {carrier.field} via {carrier.algorithm} "
                f"({rule.kind()} identifier on {', '.join(rule.fields)})")
        lines.append("templates:")
        for template in self.templates:
            conds = ", ".join(template.conditions)
            lines.append(
                f"  - {template.name}: [{conds}] -> {template.target}"
                + (f" (tol {template.tolerance})" if template.tolerance else ""))
        return "\n".join(lines)
