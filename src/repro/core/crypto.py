"""Keyed pseudo-random functions for watermark decisions.

Every decision WmXML makes — which carrier groups to mark, which
watermark bit a group carries, which direction to perturb, which byte
offsets of a binary payload to touch — is derived from
HMAC-SHA256(secret key, purpose ‖ inputs).  Purpose strings separate the
decision domains so no two uses of the PRF ever collide, and the secret
key never appears in any stored artefact (the paper's step 1: "A secret
key is used to select a number of data elements ... safeguard the set of
queries Q along with the secret key").

Hot-path design: ``hmac.new`` re-derives the inner/outer pad key
schedule on every call, which dominates short-message HMAC cost.  The
schedule depends only on the key, so it is computed once per
:class:`KeyedPRF` and reused through ``HMAC.copy()``.  On top of that a
bounded memo caches whole digests — embedding and detection re-ask the
same ``(purpose, identity)`` questions many times (selection, bit
assignment, keyed domain orderings) — and batch APIs amortise the Python
call overhead across many identities.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable, Sequence, Union

_SEPARATOR = b"\x1f"

#: Bound on the per-key digest memo; evicts oldest entries beyond this.
_MEMO_LIMIT = 8192


class KeyedPRF:
    """HMAC-SHA256 pseudo-random function with purpose separation."""

    __slots__ = ("_key", "_hmac", "_memo", "_order_memo")

    def __init__(self, secret_key: Union[str, bytes]) -> None:
        if isinstance(secret_key, str):
            secret_key = secret_key.encode("utf-8")
        if not secret_key:
            raise ValueError("secret key must not be empty")
        self._key = secret_key
        # The key schedule (inner/outer pads) is computed once here;
        # every digest then clones this state instead of re-keying.
        self._hmac = hmac.new(secret_key, digestmod=hashlib.sha256)
        self._memo: dict[tuple[str, ...], bytes] = {}
        self._order_memo: dict[tuple, list[str]] = {}

    def fingerprint(self) -> str:
        """Short public fingerprint of the key (safe to store)."""
        return self.digest("fingerprint").hex()[:16]

    # -- pickling ------------------------------------------------------------
    #
    # The HMAC key schedule is a C object pickle cannot serialise, and
    # the memo caches are pure derived state; only the key itself
    # travels.  A PRF unpickled in a process-pool worker therefore
    # arrives lean and rebuilds its pads and memos on first use —
    # the picklability contract that lets a compiled Pipeline shard
    # embed/detect work across workers.

    def __getstate__(self) -> bytes:
        return self._key

    def __setstate__(self, state: bytes) -> None:
        self.__init__(state)

    # -- primitives ------------------------------------------------------------

    def digest(self, purpose: str, *parts: str) -> bytes:
        """Raw 32-byte HMAC over purpose and parts (memoised)."""
        memo_key = (purpose,) + parts
        memo = self._memo
        cached = memo.get(memo_key)
        if cached is not None:
            return cached
        message = _SEPARATOR.join(
            [purpose.encode("utf-8")] + [p.encode("utf-8") for p in parts])
        mac = self._hmac.copy()
        mac.update(message)
        value = mac.digest()
        if len(memo) >= _MEMO_LIMIT:
            del memo[next(iter(memo))]
        memo[memo_key] = value
        return value

    def derive(self, purpose: str, *parts: str) -> bytes:
        """A 32-byte subkey for ``purpose`` (HKDF-style expand step).

        Domain-separated from every :meth:`digest` decision by a
        dedicated label, so a derived subkey can itself key a new
        :class:`KeyedPRF` (tenant keys, per-scheme keys, token-signing
        keys) without ever colliding with a watermark decision made
        under the parent key.
        """
        return self.digest("wmxml-hkdf-v1:" + purpose, *parts)

    def integer(self, purpose: str, *parts: str) -> int:
        """A uniform 64-bit integer derived from the inputs."""
        return int.from_bytes(self.digest(purpose, *parts)[:8], "big")

    def bit(self, purpose: str, *parts: str) -> int:
        """A single pseudo-random bit."""
        return self.digest(purpose, *parts)[0] & 1

    def stream(self, purpose: str, count: int, *parts: str) -> bytes:
        """``count`` pseudo-random bytes (counter-mode expansion)."""
        blocks: list[bytes] = []
        length = 0
        counter = 0
        while length < count:
            block = self.digest(purpose, *parts, str(counter))
            blocks.append(block)
            length += len(block)
            counter += 1
        return b"".join(blocks)[:count]

    # -- watermark decisions ------------------------------------------------------------

    def selects(self, identity: str, gamma: int) -> bool:
        """The 1-in-gamma selection test (Agrawal–Kiernan style).

        With ``gamma == 1`` every candidate is selected.
        """
        if gamma < 1:
            raise ValueError("gamma must be >= 1")
        return self.integer("wm-select", identity) % gamma == 0

    def selects_many(self, identities: Iterable[str],
                     gamma: int) -> list[bool]:
        """Batch form of :meth:`selects` over many identities."""
        if gamma < 1:
            raise ValueError("gamma must be >= 1")
        digest = self.digest
        return [
            int.from_bytes(digest("wm-select", identity)[:8], "big")
            % gamma == 0
            for identity in identities
        ]

    def bit_index(self, identity: str, nbits: int) -> int:
        """Which watermark bit the identified group carries."""
        if nbits < 1:
            raise ValueError("watermark must have at least one bit")
        return self.integer("wm-bitindex", identity) % nbits

    def bit_indices(self, identities: Iterable[str],
                    nbits: int) -> list[int]:
        """Batch form of :meth:`bit_index` over many identities."""
        if nbits < 1:
            raise ValueError("watermark must have at least one bit")
        digest = self.digest
        return [
            int.from_bytes(digest("wm-bitindex", identity)[:8], "big") % nbits
            for identity in identities
        ]

    def offsets(self, identity: str, count: int, modulus: int) -> list[int]:
        """``count`` distinct offsets in ``[0, modulus)`` for this identity.

        Used by the binary (image) plug-in to pick which payload bytes
        carry the mark.  When ``modulus <= count`` every offset is used.
        """
        if modulus <= 0:
            return []
        if modulus <= count:
            return list(range(modulus))
        chosen: list[int] = []
        seen: set[int] = set()
        counter = 0
        while len(chosen) < count:
            value = self.integer("wm-offset", identity, str(counter)) % modulus
            counter += 1
            if value not in seen:
                seen.add(value)
                chosen.append(value)
        return chosen

    def shuffle_key(self, purpose: str, item: str) -> int:
        """Sort key for keyed (secret) orderings of domains."""
        return self.integer(purpose, item)

    def keyed_order(self, purpose: str, items: Sequence[str]) -> list[str]:
        """The items sorted by their keyed shuffle keys.

        Orderings of closed domains are asked for once per embedded or
        extracted value, so the sorted result is memoised per
        ``(purpose, items)``.
        """
        memo_key = (purpose,) + tuple(items)
        cached = self._order_memo.get(memo_key)
        if cached is None:
            cached = sorted(items, key=lambda item: (
                self.shuffle_key(purpose, item), item))
            if len(self._order_memo) >= _MEMO_LIMIT:
                del self._order_memo[next(iter(self._order_memo))]
            self._order_memo[memo_key] = cached
        return list(cached)
