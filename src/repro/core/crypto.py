"""Keyed pseudo-random functions for watermark decisions.

Every decision WmXML makes — which carrier groups to mark, which
watermark bit a group carries, which direction to perturb, which byte
offsets of a binary payload to touch — is derived from
HMAC-SHA256(secret key, purpose ‖ inputs).  Purpose strings separate the
decision domains so no two uses of the PRF ever collide, and the secret
key never appears in any stored artefact (the paper's step 1: "A secret
key is used to select a number of data elements ... safeguard the set of
queries Q along with the secret key").
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable, Sequence, Union

_SEPARATOR = b"\x1f"


class KeyedPRF:
    """HMAC-SHA256 pseudo-random function with purpose separation."""

    __slots__ = ("_key",)

    def __init__(self, secret_key: Union[str, bytes]) -> None:
        if isinstance(secret_key, str):
            secret_key = secret_key.encode("utf-8")
        if not secret_key:
            raise ValueError("secret key must not be empty")
        self._key = secret_key

    def fingerprint(self) -> str:
        """Short public fingerprint of the key (safe to store)."""
        return self.digest("fingerprint").hex()[:16]

    # -- primitives ------------------------------------------------------------

    def digest(self, purpose: str, *parts: str) -> bytes:
        """Raw 32-byte HMAC over purpose and parts."""
        message = _SEPARATOR.join(
            [purpose.encode("utf-8")] + [p.encode("utf-8") for p in parts])
        return hmac.new(self._key, message, hashlib.sha256).digest()

    def integer(self, purpose: str, *parts: str) -> int:
        """A uniform 64-bit integer derived from the inputs."""
        return int.from_bytes(self.digest(purpose, *parts)[:8], "big")

    def bit(self, purpose: str, *parts: str) -> int:
        """A single pseudo-random bit."""
        return self.digest(purpose, *parts)[0] & 1

    def stream(self, purpose: str, count: int, *parts: str) -> bytes:
        """``count`` pseudo-random bytes (counter-mode expansion)."""
        blocks: list[bytes] = []
        counter = 0
        while sum(len(b) for b in blocks) < count:
            blocks.append(self.digest(purpose, *parts, str(counter)))
            counter += 1
        return b"".join(blocks)[:count]

    # -- watermark decisions ------------------------------------------------------------

    def selects(self, identity: str, gamma: int) -> bool:
        """The 1-in-gamma selection test (Agrawal–Kiernan style).

        With ``gamma == 1`` every candidate is selected.
        """
        if gamma < 1:
            raise ValueError("gamma must be >= 1")
        return self.integer("wm-select", identity) % gamma == 0

    def bit_index(self, identity: str, nbits: int) -> int:
        """Which watermark bit the identified group carries."""
        if nbits < 1:
            raise ValueError("watermark must have at least one bit")
        return self.integer("wm-bitindex", identity) % nbits

    def offsets(self, identity: str, count: int, modulus: int) -> list[int]:
        """``count`` distinct offsets in ``[0, modulus)`` for this identity.

        Used by the binary (image) plug-in to pick which payload bytes
        carry the mark.  When ``modulus <= count`` every offset is used.
        """
        if modulus <= 0:
            return []
        if modulus <= count:
            return list(range(modulus))
        chosen: list[int] = []
        seen: set[int] = set()
        counter = 0
        while len(chosen) < count:
            value = self.integer("wm-offset", identity, str(counter)) % modulus
            counter += 1
            if value not in seen:
                seen.add(value)
                chosen.append(value)
        return chosen

    def shuffle_key(self, purpose: str, item: str) -> int:
        """Sort key for keyed (secret) orderings of domains."""
        return self.integer(purpose, item)

    def keyed_order(self, purpose: str, items: Sequence[str]) -> list[str]:
        """The items sorted by their keyed shuffle keys."""
        return sorted(items, key=lambda item: (
            self.shuffle_key(purpose, item), item))
