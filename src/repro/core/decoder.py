"""Watermark detection (paper §2.2, step 3; the Decoder of Figure 4).

"Execute the same set of queries to retrieve the data elements or
structure units embedded with watermark bits, and reconstruct the
watermark from them.  As the schema and the XML data could be
reorganized by attackers, these queries may have to be rewritten for the
reorganized data."

The decoder therefore takes the stored :class:`WatermarkRecord` (the
query set Q) plus the :class:`DocumentShape` the *suspected* document
currently has.  When the shapes differ, compilation against the new
shape **is** the query rewriting of Figure 2 — no other adjustment is
needed because Q is stored in logical form.

Detection modes:

* **verification** — the owner supplies the expected watermark; votes
  agreeing with it are counted and a binomial p-value bounds the
  probability that unmarked data matches this well by chance;
* **blind reconstruction** — per-bit majority voting recovers the
  embedded message without prior knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.algorithms import WatermarkAlgorithm, create_algorithm
from repro.core.crypto import KeyedPRF
from repro.core.encoder import read_node_value
from repro.core.record import WatermarkRecord
from repro.core.watermark import (
    VoteTally,
    Watermark,
    binomial_pvalue,
    bit_error_rate,
)
from repro.errors import RecordFormatError
from repro.serialize import VersionedDocument
from repro.perf.profiler import profiled
from repro.rewriting.rewriter import compile_logical
from repro.semantics.errors import RecordError
from repro.semantics.shape import DocumentShape
from repro.xmlmodel.tree import Document
from repro.xpath import XPathError, compile_xpath


#: Version tag of the persisted detection-result format.
DETECTION_FORMAT = "wmxml-detection-v1"


@dataclass
class DetectionResult(VersionedDocument):
    """Everything the decoder can say about a suspected document.

    ``message_status`` explains the ``recovered_message`` field instead
    of leaving a silent ``None``: ``"decoded"`` (message recovered),
    ``"incomplete"`` (some bit positions had no votes or tied),
    ``"not-byte-aligned"`` (the scheme embeds a bit count that is not a
    whole number of bytes), or ``"invalid-utf8"`` (every bit recovered
    but the bytes decode to no text — typical of a damaged mark).
    """

    format_tag = DETECTION_FORMAT
    format_error = RecordFormatError

    votes_total: int
    votes_matching: int
    queries_total: int
    queries_answered: int
    p_value: float
    detected: bool
    alpha: float
    recovered_bits: list[Optional[int]] = field(default_factory=list)
    recovered_message: Optional[str] = None
    bit_error: Optional[float] = None
    recovered_fraction: float = 0.0
    queries_rejected: int = 0
    message_status: str = "incomplete"

    @property
    def match_ratio(self) -> float:
        if self.votes_total == 0:
            return 0.0
        return self.votes_matching / self.votes_total

    @property
    def query_survival(self) -> float:
        if self.queries_total == 0:
            return 0.0
        return self.queries_answered / self.queries_total

    def __str__(self) -> str:
        verdict = "DETECTED" if self.detected else "not detected"
        return (
            f"{verdict}: {self.votes_matching}/{self.votes_total} votes "
            f"match (p={self.p_value:.2e}), "
            f"{self.queries_answered}/{self.queries_total} queries answered")

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Versioned JSON-safe form, so results survive process hops."""
        return {
            "format": DETECTION_FORMAT,
            "votes_total": self.votes_total,
            "votes_matching": self.votes_matching,
            "queries_total": self.queries_total,
            "queries_answered": self.queries_answered,
            "p_value": self.p_value,
            "detected": self.detected,
            "alpha": self.alpha,
            "recovered_bits": list(self.recovered_bits),
            "recovered_message": self.recovered_message,
            "bit_error": self.bit_error,
            "recovered_fraction": self.recovered_fraction,
            "queries_rejected": self.queries_rejected,
            "message_status": self.message_status,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DetectionResult":
        cls._check_format(data)
        fields = {key: value for key, value in data.items()
                  if key != "format"}
        try:
            return cls(**fields)
        except TypeError as error:
            raise RecordFormatError(
                f"malformed detection result: {error}") from error


class WmXMLDecoder:
    """The decoder component of the WmXML architecture."""

    def __init__(self, secret_key: Union[str, bytes],
                 alpha: float = 1e-3) -> None:
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        self.prf = KeyedPRF(secret_key)
        self.alpha = alpha
        self._algorithms: dict[str, WatermarkAlgorithm] = {}

    def _algorithm(self, name: str, params: dict,
                   cache_key: str) -> WatermarkAlgorithm:
        """Plug-in lookup keyed by the query's precomputed cache key."""
        algorithm = self._algorithms.get(cache_key)
        if algorithm is None:
            algorithm = create_algorithm(name, params)
            self._algorithms[cache_key] = algorithm
        return algorithm

    # Pickling ships only the configuration (PRF + alpha); the plug-in
    # cache is derived state a pool worker rebuilds lazily.

    def __getstate__(self) -> dict:
        return {"prf": self.prf, "alpha": self.alpha}

    def __setstate__(self, state: dict) -> None:
        self.prf = state["prf"]
        self.alpha = state["alpha"]
        self._algorithms = {}

    # -- public API ------------------------------------------------------------

    @profiled("decoder.detect")
    def detect(
        self,
        document: Document,
        record: WatermarkRecord,
        shape: DocumentShape,
        expected: Optional[Watermark] = None,
        indexed: bool = False,
    ) -> DetectionResult:
        """Run the query set Q against ``document`` and tally votes.

        ``shape`` describes the document's *current* organisation; when
        it differs from the embedding-time shape, each logical query is
        recompiled — i.e. rewritten — for it.

        ``indexed=True`` answers the queries through a
        :class:`~repro.rewriting.executor.LogicalExecutor` (one shred +
        inverted indexes) instead of per-query XPath evaluation, turning
        detection from O(|Q|·|doc|) into O(|doc| + |Q|) — same votes,
        same verdict.

        Every stored query is first *authenticated against the key*: its
        keyed selection and bit index must re-derive from (key,
        identity).  The derivation is deterministic, so the owner's key
        authenticates **every** entry; a single rejected entry proves the
        record does not belong to the presented key, and the claim is
        refused outright (``detected=False``) no matter how the votes
        fall.  This closes the accidental-authentication forgery: a
        wrong key that happens to pass the 1-in-(gamma*nbits) check for
        a few entries would otherwise harvest their honestly-embedded —
        hence perfectly matching — votes.
        """
        executor = None
        if indexed:
            from repro.rewriting.executor import LogicalExecutor

            executor = LogicalExecutor(document, shape)
        tally = VoteTally()
        queries_answered = 0
        queries_rejected = 0
        authentic_flags = self._authenticate_all(record)
        for wm_query, authentic in zip(record.queries, authentic_flags):
            if not authentic:
                queries_rejected += 1
                continue
            algorithm = self._algorithm(wm_query.algorithm,
                                        wm_query.param_map,
                                        wm_query.algorithm_cache_key)
            if executor is not None:
                try:
                    nodes = executor.execute(wm_query.query)
                except RecordError:
                    nodes = []
            else:
                nodes = self._execute(document, wm_query.query, shape)
            answered = False
            for node in nodes:
                value = read_node_value(node)
                bit = algorithm.extract(value, self.prf, wm_query.identity)
                if bit is None:
                    continue
                tally.add(wm_query.bit_index, bit)
                answered = True
            if answered:
                queries_answered += 1

        recovered = tally.reconstruct(record.nbits)
        recovered_message, message_status = self._decode_message(recovered)

        if expected is not None:
            matching, total = tally.matching_votes(expected)
            p_value = binomial_pvalue(matching, total)
            bit_error: Optional[float] = bit_error_rate(recovered, expected)
        else:
            # Blind mode: judge the strength of the majority consensus.
            matching = sum(
                max(tally.zeros.get(i, 0), tally.ones.get(i, 0))
                for i in tally.indices())
            total = tally.total_votes
            p_value = binomial_pvalue(matching, total)
            bit_error = None

        record_authentic = queries_rejected == 0
        return DetectionResult(
            votes_total=total,
            votes_matching=matching,
            queries_total=len(record.queries),
            queries_answered=queries_answered,
            p_value=p_value,
            detected=record_authentic and p_value < self.alpha,
            alpha=self.alpha,
            recovered_bits=recovered,
            recovered_message=recovered_message,
            bit_error=bit_error,
            recovered_fraction=tally.recovered_fraction(record.nbits),
            queries_rejected=queries_rejected,
            message_status=message_status,
        )

    # -- helpers ------------------------------------------------------------

    def _authenticate_all(self, record: WatermarkRecord) -> list[bool]:
        """Batch key authentication of every stored entry.

        An entry is authentic when it re-derives from the presented
        key: its keyed selection fires and its stored bit index matches
        the key's derivation.  Both decisions run through the PRF's
        batch APIs in two passes over the identities.
        """
        identities = [query.identity for query in record.queries]
        selected = self.prf.selects_many(identities, record.gamma)
        indices = self.prf.bit_indices(identities, record.nbits)
        return [
            chosen and index == query.bit_index
            for query, chosen, index in zip(record.queries, selected, indices)
        ]

    @staticmethod
    def _execute(document: Document, query, shape: DocumentShape) -> list:
        try:
            xpath = compile_logical(query, shape)
            return compile_xpath(xpath).select(document)
        except (XPathError, RecordError):
            # A query that no longer compiles or matches contributes no
            # votes; detection degrades gracefully.
            return []

    @staticmethod
    def _decode_message(
            recovered: list[Optional[int]]) -> tuple[Optional[str], str]:
        """(message, status) — status says *why* when message is None."""
        if any(bit is None for bit in recovered):
            return None, "incomplete"
        if len(recovered) % 8 != 0:
            return None, "not-byte-aligned"
        message = Watermark(recovered).to_message()
        if message is None:
            return None, "invalid-utf8"
        return message, "decoded"
