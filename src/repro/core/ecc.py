"""Error-correcting codes for watermark messages.

Blind detection reconstructs each bit by majority vote, but attacks can
leave bit positions with no votes (erasures) or flipped majorities
(errors).  Encoding the message with an ECC before embedding buys the
owner full message recovery at higher damage levels — an extension the
original system leaves open (its detection was verification-style).

Two codes are provided behind one interface:

* :class:`RepetitionCode` — each bit repeated ``factor`` times, decoded
  by majority with erasure tolerance; simple and strong for small
  messages;
* :class:`Hamming74Code` — the classic (7,4) Hamming code: 4 data bits
  per 7-bit block, corrects any single error per block and, combined
  with erasure filling, recovers a block with one missing vote.

Both operate on ``Optional[int]`` bit lists so decoder output
(:attr:`DetectionResult.recovered_bits`) plugs straight in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.core.watermark import Watermark

Bits = Sequence[int]
SoftBits = Sequence[Optional[int]]


class ECCode(ABC):
    """Encode watermark bits; decode noisy/erased recovered bits."""

    name: str = ""

    @abstractmethod
    def encode(self, bits: Bits) -> list[int]:
        """Codeword bits for the data bits."""

    @abstractmethod
    def decode(self, bits: SoftBits) -> list[Optional[int]]:
        """Best-effort data bits from a (noisy, partial) codeword."""

    def encoded_length(self, data_length: int) -> int:
        """Codeword length for ``data_length`` data bits."""
        return len(self.encode([0] * data_length))

    def encode_watermark(self, watermark: Watermark) -> Watermark:
        """Watermark carrying the codeword of ``watermark``'s bits."""
        return Watermark(self.encode(list(watermark.bits)))

    def decode_message(self, bits: SoftBits) -> Optional[str]:
        """Decode and interpret as a UTF-8 message, if fully recovered."""
        data = self.decode(bits)
        if any(bit is None for bit in data):
            return None
        return Watermark([b for b in data if b is not None]).to_message()


class RepetitionCode(ECCode):
    """Each data bit repeated ``factor`` times; majority decoding."""

    name = "repetition"

    def __init__(self, factor: int = 3) -> None:
        if factor < 1:
            raise ValueError("repetition factor must be >= 1")
        self.factor = factor

    def encode(self, bits: Bits) -> list[int]:
        encoded: list[int] = []
        for bit in bits:
            encoded.extend([bit] * self.factor)
        return encoded

    def decode(self, bits: SoftBits) -> list[Optional[int]]:
        if len(bits) % self.factor != 0:
            raise ValueError(
                f"codeword length {len(bits)} is not a multiple of "
                f"{self.factor}")
        data: list[Optional[int]] = []
        for start in range(0, len(bits), self.factor):
            block = [b for b in bits[start:start + self.factor]
                     if b is not None]
            ones = sum(block)
            zeros = len(block) - ones
            if ones > zeros:
                data.append(1)
            elif zeros > ones:
                data.append(0)
            else:
                data.append(None)
        return data


#: Generator positions: codeword = (p1, p2, d1, p3, d2, d3, d4) with the
#: standard Hamming(7,4) parity equations.
_H74_DATA_POSITIONS = (2, 4, 5, 6)
_H74_PARITY = {
    0: (2, 4, 6),   # p1 covers d1 d2 d4
    1: (2, 5, 6),   # p2 covers d1 d3 d4
    3: (4, 5, 6),   # p3 covers d2 d3 d4
}


class Hamming74Code(ECCode):
    """The (7,4) Hamming code: single-error correction per block.

    Data shorter than a multiple of 4 is zero-padded; the pad length is
    *not* stored, so callers decode ``encoded_length(n)`` bits and take
    the first ``n`` data bits (``decode`` returns every block's data).
    """

    name = "hamming74"

    def encode(self, bits: Bits) -> list[int]:
        padded = list(bits)
        while len(padded) % 4 != 0:
            padded.append(0)
        encoded: list[int] = []
        for start in range(0, len(padded), 4):
            d1, d2, d3, d4 = padded[start:start + 4]
            block = [0, 0, d1, 0, d2, d3, d4]
            for parity_pos, covered in _H74_PARITY.items():
                block[parity_pos] = sum(block[i] for i in covered) % 2
            encoded.extend(block)
        return encoded

    @staticmethod
    def _correct_block(block: list[int]) -> list[int]:
        """Syndrome-decode one 7-bit block in place."""
        syndrome = 0
        for parity_pos, covered in _H74_PARITY.items():
            check = (block[parity_pos] + sum(block[i] for i in covered)) % 2
            if check:
                syndrome += parity_pos + 1
        if syndrome:
            index = syndrome - 1
            if index < len(block):
                block[index] ^= 1
        return block

    def decode(self, bits: SoftBits) -> list[Optional[int]]:
        if len(bits) % 7 != 0:
            raise ValueError(
                f"codeword length {len(bits)} is not a multiple of 7")
        data: list[Optional[int]] = []
        for start in range(0, len(bits), 7):
            raw = list(bits[start:start + 7])
            erasures = [i for i, b in enumerate(raw) if b is None]
            if len(erasures) > 1:
                # More than one missing vote per block: undecodable.
                data.extend([None] * 4)
                continue
            # Fill a single erasure with 0; if that guess is wrong the
            # result is a single-bit error, which the syndrome fixes.
            block = [0 if b is None else b for b in raw]
            block = self._correct_block(block)
            data.extend(block[i] for i in _H74_DATA_POSITIONS)
        return data


def choose_code(name: str, **params) -> ECCode:
    """Factory: ``repetition`` (factor=...) or ``hamming74``."""
    if name == "repetition":
        return RepetitionCode(**params)
    if name == "hamming74":
        return Hamming74Code(**params)
    raise ValueError(f"unknown ECC {name!r}")
