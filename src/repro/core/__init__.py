"""WmXML core: the paper's primary contribution.

The public API mirrors the system architecture of Figure 4:

* :class:`~repro.core.scheme.WatermarkingScheme` — the user's inputs
  (shape, carrier fields with identifier rules, usability templates,
  selection density),
* :class:`~repro.core.encoder.WmXMLEncoder` — watermark insertion,
  returning the marked document and the query set Q
  (:class:`~repro.core.record.WatermarkRecord`),
* :class:`~repro.core.decoder.WmXMLDecoder` — detection, with query
  rewriting when the suspected document was reorganised,
* :class:`~repro.core.watermark.Watermark` — the bit-string message,
* :mod:`~repro.core.algorithms` — the per-type embedding plug-ins,
* :class:`~repro.core.usability.UsabilityBaseline` — the §2.1
  query-template usability metric.

Quickstart::

    from repro.core import (CarrierSpec, KeyIdentifier, Watermark,
                            WatermarkingScheme, WmXMLDecoder, WmXMLEncoder)

    scheme = WatermarkingScheme(shape=my_shape, carriers=[
        CarrierSpec.create("year", "numeric", KeyIdentifier(("title",)))])
    encoder = WmXMLEncoder(scheme, secret_key="owner-secret")
    result = encoder.embed(doc, Watermark.from_message("(c) me"))
    decoder = WmXMLDecoder("owner-secret")
    outcome = decoder.detect(result.document, result.record, my_shape,
                             expected=Watermark.from_message("(c) me"))
    assert outcome.detected
"""

from repro.core.algorithms import (
    AlgorithmError,
    WatermarkAlgorithm,
    algorithm_names,
    create_algorithm,
)
from repro.core.crypto import KeyedPRF
from repro.core.decoder import DetectionResult, WmXMLDecoder
from repro.core.ecc import ECCode, Hamming74Code, RepetitionCode, choose_code
from repro.core.fingerprint import Fingerprinter, IssuedCopy, TraceResult
from repro.core.encoder import (
    EmbeddingResult,
    EmbeddingStats,
    WmXMLEncoder,
    read_node_value,
    write_node_value,
)
from repro.core.identity import (
    CarrierGroup,
    CarrierSpec,
    FDIdentifier,
    IdentifierRule,
    KeyIdentifier,
    build_carrier_groups,
    identity_string,
)
from repro.core.record import WatermarkQuery, WatermarkRecord
from repro.core.scheme import WatermarkingScheme
from repro.core.selection import EmbeddingSlot, SelectionStats, select_groups
from repro.core.usability import (
    UsabilityBaseline,
    UsabilityReport,
    UsabilityTemplate,
    values_match,
)
from repro.core.watermark import (
    VoteTally,
    Watermark,
    binomial_pvalue,
    bit_error_rate,
)

__all__ = [
    "AlgorithmError",
    "CarrierGroup",
    "CarrierSpec",
    "DetectionResult",
    "ECCode",
    "Fingerprinter",
    "Hamming74Code",
    "IssuedCopy",
    "EmbeddingResult",
    "EmbeddingSlot",
    "EmbeddingStats",
    "FDIdentifier",
    "IdentifierRule",
    "KeyIdentifier",
    "KeyedPRF",
    "RepetitionCode",
    "SelectionStats",
    "TraceResult",
    "UsabilityBaseline",
    "UsabilityReport",
    "UsabilityTemplate",
    "VoteTally",
    "Watermark",
    "WatermarkAlgorithm",
    "WatermarkQuery",
    "WatermarkRecord",
    "WatermarkingScheme",
    "WmXMLDecoder",
    "WmXMLEncoder",
    "algorithm_names",
    "binomial_pvalue",
    "bit_error_rate",
    "choose_code",
    "build_carrier_groups",
    "create_algorithm",
    "identity_string",
    "read_node_value",
    "select_groups",
    "values_match",
    "write_node_value",
]
