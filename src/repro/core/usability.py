"""Data usability measured by query-template correctness (paper §2.1).

"A set of query templates, e.g. ``db/book[title]/author``, are specified
by user to depict data usability.  After watermarking or attacks, if a
certain fraction of the results to these query templates are destroyed,
the usability of the XML data is regarded destroyed."

A :class:`UsabilityTemplate` is the logical form of such a template:
condition fields (the bracketed parameters) and a target field.  The
evaluator

1. snapshots the original document: for every observed binding of the
   condition fields, the expected set of target values;
2. re-runs each instantiated query against a (possibly watermarked,
   attacked, or reorganised) document — compiling against whatever
   shape that document has — and scores the answers.

Two scores are reported: **strict** (fraction of instantiated queries
answered exactly) and **jaccard** (mean set overlap, which degrades
smoothly under partial damage).  Numeric targets may declare a relative
``tolerance`` so that imperceptible perturbations — the watermark's own
embeddings — do not count as damage, while large alterations do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.rewriting.logical import LogicalQuery
from repro.rewriting.rewriter import compile_logical
from repro.semantics.errors import RecordError
from repro.semantics.shape import DocumentShape
from repro.xmlmodel.tree import Document
from repro.xpath import XPathError, compile_xpath


@dataclass(frozen=True)
class UsabilityTemplate:
    """One query template: target field and condition (parameter) fields.

    ``tolerance`` declares a relative numeric slack; ``casefold``
    declares that letter case is immaterial to this consumer.  Both are
    the user's statement of what "correct" means — imperceptible
    perturbations within them are not damage (paper §2.1).
    """

    name: str
    target: str
    conditions: tuple[str, ...]
    tolerance: float = 0.0
    casefold: bool = False

    def __post_init__(self) -> None:
        if not self.conditions:
            raise ValueError(
                f"template {self.name!r} needs at least one condition field")
        if self.target in self.conditions:
            raise ValueError(
                f"template {self.name!r}: target repeats a condition")
        if self.tolerance < 0:
            raise ValueError("tolerance must be >= 0")

    def normalise(self, values: set[str]) -> set[str]:
        """Apply the template's declared insensitivities to a value set."""
        if self.casefold:
            return {value.casefold() for value in values}
        return values

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "conditions": list(self.conditions),
            "tolerance": self.tolerance,
            "casefold": self.casefold,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UsabilityTemplate":
        return cls(data["name"], data["target"],
                   tuple(data["conditions"]), data.get("tolerance", 0.0),
                   data.get("casefold", False))


def values_match(expected: str, actual: str, tolerance: float) -> bool:
    """Value equality with optional relative numeric tolerance."""
    if expected == actual:
        return True
    if tolerance <= 0:
        return False
    try:
        want, got = float(expected), float(actual)
    except ValueError:
        return False
    return abs(got - want) <= tolerance * max(abs(want), 1e-12)


def set_overlap(expected: set[str], actual: set[str],
                tolerance: float) -> tuple[int, int]:
    """(matched pairs, union size) under tolerance-aware greedy pairing."""
    if tolerance <= 0:
        matched = len(expected & actual)
        union = len(expected | actual)
        return matched, union
    remaining = list(actual)
    matched = 0
    for want in expected:
        for index, got in enumerate(remaining):
            if values_match(want, got, tolerance):
                matched += 1
                del remaining[index]
                break
    union = len(expected) + len(actual) - matched
    return matched, union


@dataclass
class InstantiatedQuery:
    """One concrete query produced from a template binding."""

    template: UsabilityTemplate
    query: LogicalQuery
    expected: frozenset[str]


@dataclass
class TemplateScore:
    """Per-template usability outcome."""

    template: str
    queries: int
    exact: int
    jaccard_sum: float

    @property
    def strict(self) -> float:
        return self.exact / self.queries if self.queries else 0.0

    @property
    def jaccard(self) -> float:
        return self.jaccard_sum / self.queries if self.queries else 0.0


@dataclass
class UsabilityReport:
    """Aggregate usability of a document versus the snapshot."""

    strict: float
    jaccard: float
    per_template: list[TemplateScore] = field(default_factory=list)
    queries: int = 0

    def destroyed(self, threshold: float = 0.5) -> bool:
        """The paper's destruction criterion: too many answers broken."""
        return self.strict < threshold

    def __str__(self) -> str:
        return (f"usability strict={self.strict:.3f} "
                f"jaccard={self.jaccard:.3f} over {self.queries} queries")


class UsabilityBaseline:
    """Expected template answers snapshot from the original document."""

    def __init__(self, instantiated: list[InstantiatedQuery],
                 shape: DocumentShape) -> None:
        self.instantiated = instantiated
        self.shape = shape

    @classmethod
    def snapshot(
        cls,
        document: Document,
        shape: DocumentShape,
        templates: Sequence[UsabilityTemplate],
    ) -> "UsabilityBaseline":
        """Instantiate every template over the document's bindings."""
        rows = shape.shred(document)
        instantiated: list[InstantiatedQuery] = []
        for template in templates:
            bindings: dict[tuple[str, ...], set[str]] = {}
            order: list[tuple[str, ...]] = []
            for row in rows:
                needed = template.conditions + (template.target,)
                if any(name not in row.values for name in needed):
                    continue
                key = row.key(template.conditions)
                if key not in bindings:
                    bindings[key] = set()
                    order.append(key)
                bindings[key].add(row.values[template.target])
            for key in order:
                query = LogicalQuery.create(
                    template.target, dict(zip(template.conditions, key)))
                instantiated.append(InstantiatedQuery(
                    template, query, frozenset(bindings[key])))
        return cls(instantiated, shape)

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        document: Document,
        shape: Optional[DocumentShape] = None,
    ) -> UsabilityReport:
        """Score ``document`` against the snapshot.

        ``shape`` names the document's current organisation (defaults to
        the snapshot's); passing the reorganised shape exercises the
        template-rewriting path.
        """
        target_shape = shape or self.shape
        scores: dict[str, TemplateScore] = {}
        for item in self.instantiated:
            score = scores.get(item.template.name)
            if score is None:
                score = TemplateScore(item.template.name, 0, 0, 0.0)
                scores[item.template.name] = score
            score.queries += 1
            actual = item.template.normalise(
                self._answer(document, item.query, target_shape))
            expected = item.template.normalise(set(item.expected))
            tolerance = item.template.tolerance
            matched, union = set_overlap(expected, actual, tolerance)
            exact = (matched == len(expected) == len(actual))
            if exact:
                score.exact += 1
            score.jaccard_sum += matched / union if union else 1.0
        per_template = list(scores.values())
        total_queries = sum(s.queries for s in per_template)
        total_exact = sum(s.exact for s in per_template)
        total_jaccard = sum(s.jaccard_sum for s in per_template)
        return UsabilityReport(
            strict=total_exact / total_queries if total_queries else 0.0,
            jaccard=total_jaccard / total_queries if total_queries else 0.0,
            per_template=per_template,
            queries=total_queries,
        )

    @staticmethod
    def _answer(document: Document, query: LogicalQuery,
                shape: DocumentShape) -> set[str]:
        try:
            xpath = compile_logical(query, shape)
            return set(compile_xpath(xpath).select_strings(document))
        except (XPathError, RecordError):
            # A query that cannot even be posed returns no answer — the
            # paper's notion of a destroyed result.
            return set()
