"""Watermark messages, vote tallies, and detection statistics.

A watermark is a bit string (usually the UTF-8 bits of an ownership
message).  Each selected carrier group embeds one bit; detection
collects one *vote* per surviving carrier instance and:

* reconstructs bits by per-index majority (blind detection), and
* when the owner supplies the expected watermark, tests the hypothesis
  "these votes are random" with a binomial tail — the standard
  Agrawal–Kiernan style significance argument.  A detection is claimed
  when the probability that random data produced this many matching
  votes falls below ``alpha``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from scipy import stats

from repro.errors import WatermarkDecodeError


class Watermark:
    """An immutable bit string with optional text interpretation."""

    __slots__ = ("bits",)

    def __init__(self, bits: Sequence[int]) -> None:
        if not bits:
            raise ValueError("watermark must contain at least one bit")
        if any(bit not in (0, 1) for bit in bits):
            raise ValueError("watermark bits must be 0 or 1")
        self.bits: tuple[int, ...] = tuple(bits)

    @classmethod
    def from_message(cls, message: str) -> "Watermark":
        """Encode a text message as its UTF-8 bits (MSB first)."""
        if not message:
            raise ValueError("message must not be empty")
        bits: list[int] = []
        for byte in message.encode("utf-8"):
            for position in range(7, -1, -1):
                bits.append((byte >> position) & 1)
        return cls(bits)

    def to_message(self, strict: bool = False) -> Optional[str]:
        """Decode back to text.

        By default undecodable bit strings yield ``None``; with
        ``strict=True`` they raise :class:`~repro.errors.
        WatermarkDecodeError` naming the reason — callers that treat a
        silent ``None`` as data loss (services persisting results)
        should use strict mode.
        """
        if len(self.bits) % 8 != 0:
            if strict:
                raise WatermarkDecodeError(
                    f"{len(self.bits)} bits is not a whole number of "
                    "bytes; the bit string has no text interpretation")
            return None
        data = bytearray()
        for start in range(0, len(self.bits), 8):
            byte = 0
            for bit in self.bits[start:start + 8]:
                byte = (byte << 1) | bit
            data.append(byte)
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as error:
            if strict:
                raise WatermarkDecodeError(
                    f"recovered bytes are not valid UTF-8: {error}"
                ) from error
            return None

    def __len__(self) -> int:
        return len(self.bits)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Watermark) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(self.bits)

    def hamming_distance(self, other: "Watermark") -> int:
        """Number of differing bit positions (lengths must match)."""
        if len(other) != len(self):
            raise ValueError("watermark lengths differ")
        return sum(a != b for a, b in zip(self.bits, other.bits))

    def __repr__(self) -> str:
        preview = "".join(str(b) for b in self.bits[:32])
        suffix = "..." if len(self.bits) > 32 else ""
        return f"Watermark({preview}{suffix}, nbits={len(self.bits)})"


@dataclass
class VoteTally:
    """Per-bit-index vote counts collected during detection."""

    zeros: dict[int, int] = field(default_factory=dict)
    ones: dict[int, int] = field(default_factory=dict)

    def add(self, bit_index: int, bit: int) -> None:
        bucket = self.ones if bit else self.zeros
        bucket[bit_index] = bucket.get(bit_index, 0) + 1

    @property
    def total_votes(self) -> int:
        return sum(self.zeros.values()) + sum(self.ones.values())

    def indices(self) -> set[int]:
        return set(self.zeros) | set(self.ones)

    def majority(self, bit_index: int) -> Optional[int]:
        """Majority bit at an index; None when unseen or tied."""
        zeros = self.zeros.get(bit_index, 0)
        ones = self.ones.get(bit_index, 0)
        if zeros == ones:
            return None
        return 1 if ones > zeros else 0

    def reconstruct(self, nbits: int) -> list[Optional[int]]:
        """Blind per-index majority reconstruction."""
        return [self.majority(index) for index in range(nbits)]

    def matching_votes(self, expected: Watermark) -> tuple[int, int]:
        """(votes agreeing with ``expected``, total votes)."""
        matching = 0
        for index in range(len(expected)):
            bit = expected.bits[index]
            matching += (self.ones if bit else self.zeros).get(index, 0)
        return matching, self.total_votes

    def recovered_fraction(self, nbits: int) -> float:
        """Fraction of bit positions with at least one vote."""
        if nbits == 0:
            return 0.0
        return len(self.indices()) / nbits


def binomial_pvalue(matches: int, total: int) -> float:
    """P[Binomial(total, 1/2) >= matches] — the false-hit probability.

    This is the probability that unwatermarked (random) data yields at
    least this many agreeing votes.  Returns 1.0 for empty tallies so a
    document with no surviving carriers can never be claimed.
    """
    if total <= 0:
        return 1.0
    if matches < 0 or matches > total:
        raise ValueError("matches must lie in [0, total]")
    return float(stats.binom.sf(matches - 1, total, 0.5))


def bit_error_rate(
    recovered: Sequence[Optional[int]], expected: Watermark
) -> float:
    """Fraction of expected bits not recovered correctly.

    Unrecovered positions (None) count as errors: the owner cannot
    present them as evidence.
    """
    if len(recovered) != len(expected):
        raise ValueError("length mismatch")
    errors = sum(
        1 for got, want in zip(recovered, expected.bits) if got != want)
    return errors / len(expected)
