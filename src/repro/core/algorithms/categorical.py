"""Categorical watermark plug-in: keyed domain pairing.

For closed-domain fields (department codes, job categories, media
formats...) the bit is carried by the value's *position parity* in a
secret ordering of the domain:

* the domain is sorted by HMAC(key, value) — an ordering only the key
  holder can reproduce;
* consecutive elements form swap pairs ``(d0,d1), (d2,d3), ...``;
* a value at even position carries 0, odd position carries 1; embedding
  the other bit swaps the value for its pair partner.

An adversary without the key sees only plausible domain values and
cannot tell marked from unmarked ones.  With an odd-sized domain, the
last element has no partner and is reported unusable (extract -> None).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.algorithms.base import (
    AlgorithmError,
    WatermarkAlgorithm,
    register_algorithm,
)
from repro.core.crypto import KeyedPRF


@register_algorithm
class CategoricalAlgorithm(WatermarkAlgorithm):
    """Pair-swap embedding over a closed value domain."""

    name = "categorical"

    def __init__(self, domain: Sequence[str] = ()) -> None:
        domain = tuple(domain)
        if len(domain) < 2:
            raise AlgorithmError("categorical domain needs >= 2 values")
        if len(set(domain)) != len(domain):
            raise AlgorithmError("categorical domain has duplicates")
        self.domain = domain
        self._members = set(domain)

    def params(self) -> dict[str, Any]:
        return {"domain": list(self.domain)}

    # -- keyed pairing ------------------------------------------------------------

    def _ordered(self, prf: KeyedPRF) -> list[str]:
        return prf.keyed_order("categorical-order", self.domain)

    def _position(self, value: str, prf: KeyedPRF) -> Optional[int]:
        if value not in self._members:
            return None
        return self._ordered(prf).index(value)

    # -- plug-in interface ------------------------------------------------------------

    def applicable(self, value: str) -> bool:
        return value in self._members

    def embed(self, value: str, bit: int, prf: KeyedPRF, identity: str) -> str:
        position = self._position(value, prf)
        if position is None:
            return value
        ordered = self._ordered(prf)
        if position == len(ordered) - 1 and len(ordered) % 2 == 1:
            return value  # unpaired last element cannot carry a bit
        if position % 2 == bit:
            return value
        partner = position + 1 if position % 2 == 0 else position - 1
        return ordered[partner]

    def extract(self, value: str, prf: KeyedPRF, identity: str) -> Optional[int]:
        position = self._position(value, prf)
        if position is None:
            return None
        ordered = self._ordered(prf)
        if position == len(ordered) - 1 and len(ordered) % 2 == 1:
            return None
        return position % 2

    def distortion(self, original: str, marked: str) -> float:
        return 0.0 if original == marked else 1.0
