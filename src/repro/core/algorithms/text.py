"""Text watermark plug-in: keyed case parity.

Free-text fields carry a bit in the letter case of one pseudo-randomly
chosen alphabetic character (skipping the first character, so headline
capitalisation is never disturbed): lowercase encodes 0, uppercase
encodes 1.  The position is derived from HMAC(key, identity), so an
adversary cannot tell which character (of which element) matters.

This is the reproduction's stand-in for the linguistic text-marking
plug-ins real systems use; it exercises the same code path (typed
dispatch, keyed position choice, deterministic re-embedding) with a
perturbation of exactly one character.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.algorithms.base import WatermarkAlgorithm, register_algorithm
from repro.core.crypto import KeyedPRF


@register_algorithm
class TextCaseAlgorithm(WatermarkAlgorithm):
    """Case-parity embedding into one keyed character position."""

    name = "text-case"

    def params(self) -> dict[str, Any]:
        return {}

    @staticmethod
    def _letter_positions(value: str) -> list[int]:
        """Indices of case-toggleable characters beyond the first one."""
        return [
            index
            for index, char in enumerate(value)
            if index > 0 and char.isalpha() and char.upper() != char.lower()
        ]

    def _carrier_position(self, value: str, prf: KeyedPRF,
                          identity: str) -> Optional[int]:
        positions = self._letter_positions(value)
        if not positions:
            return None
        choice = prf.integer("text-pos", identity, str(len(positions)))
        return positions[choice % len(positions)]

    # -- plug-in interface ------------------------------------------------------------

    def applicable(self, value: str) -> bool:
        return bool(self._letter_positions(value))

    def embed(self, value: str, bit: int, prf: KeyedPRF, identity: str) -> str:
        position = self._carrier_position(value, prf, identity)
        if position is None:
            return value
        char = value[position]
        marked = char.upper() if bit else char.lower()
        return value[:position] + marked + value[position + 1:]

    def extract(self, value: str, prf: KeyedPRF, identity: str) -> Optional[int]:
        position = self._carrier_position(value, prf, identity)
        if position is None:
            return None
        return 1 if value[position].isupper() else 0
