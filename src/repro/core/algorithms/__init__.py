"""Plug-in watermarking algorithms (the WA_i boxes of Figure 4).

Importing this package registers every built-in plug-in:

* ``numeric``     — digit-parity embedding for decimals/integers,
* ``categorical`` — keyed pair-swap over a closed domain,
* ``text-case``   — case parity of one keyed character,
* ``binary-lsb``  — LSB embedding into base64 binary payloads (images),
* ``date``        — day-of-month parity for ISO dates.
"""

from repro.core.algorithms.base import (
    AlgorithmError,
    WatermarkAlgorithm,
    algorithm_names,
    create_algorithm,
    register_algorithm,
)
from repro.core.algorithms.binary import BinaryLSBAlgorithm
from repro.core.algorithms.categorical import CategoricalAlgorithm
from repro.core.algorithms.dates import DateAlgorithm
from repro.core.algorithms.numeric import NumericAlgorithm
from repro.core.algorithms.text import TextCaseAlgorithm

__all__ = [
    "AlgorithmError",
    "BinaryLSBAlgorithm",
    "CategoricalAlgorithm",
    "DateAlgorithm",
    "NumericAlgorithm",
    "TextCaseAlgorithm",
    "WatermarkAlgorithm",
    "algorithm_names",
    "create_algorithm",
    "register_algorithm",
]
