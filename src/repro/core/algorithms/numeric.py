"""Numeric watermark plug-in: least-significant-digit parity.

The classical scheme the paper inherits from Agrawal–Kiernan: the bit is
stored in the parity of the value's least significant digit at a chosen
decimal position.  ``fraction_digits`` fixes that position —
``fraction_digits=2`` marks cents in a price, ``fraction_digits=0``
marks the unit digit of an integer (e.g. a year).

Embedding moves the digit by at most one step (±10^-fraction_digits),
with the direction chosen pseudo-randomly per identity so the
perturbations have no systematic drift an adversary could exploit.
Extraction is just the parity test, so it needs no knowledge of the
original value.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.algorithms.base import (
    AlgorithmError,
    WatermarkAlgorithm,
    register_algorithm,
)
from repro.core.crypto import KeyedPRF


@register_algorithm
class NumericAlgorithm(WatermarkAlgorithm):
    """Digit-parity embedding for decimal numeric values."""

    name = "numeric"

    def __init__(self, fraction_digits: int = 0) -> None:
        if fraction_digits < 0 or fraction_digits > 9:
            raise AlgorithmError("fraction_digits must be in [0, 9]")
        self.fraction_digits = fraction_digits
        self._scale = 10 ** fraction_digits

    def params(self) -> dict[str, Any]:
        return {"fraction_digits": self.fraction_digits}

    # -- helpers ------------------------------------------------------------

    def _parse(self, value: str) -> Optional[int]:
        """The value as an integer count of 10^-fraction_digits units."""
        try:
            number = float(value.strip())
        except (ValueError, AttributeError):
            return None
        scaled = round(number * self._scale)
        if abs(scaled) > 10 ** 15:
            return None  # beyond exact float integer range
        return scaled

    def _render(self, scaled: int) -> str:
        if self.fraction_digits == 0:
            return str(scaled)
        sign = "-" if scaled < 0 else ""
        magnitude = abs(scaled)
        whole, fraction = divmod(magnitude, self._scale)
        return f"{sign}{whole}.{fraction:0{self.fraction_digits}d}"

    # -- plug-in interface ------------------------------------------------------------

    def applicable(self, value: str) -> bool:
        return self._parse(value) is not None

    def embed(self, value: str, bit: int, prf: KeyedPRF, identity: str) -> str:
        scaled = self._parse(value)
        if scaled is None:
            return value
        if abs(scaled) % 2 == bit:
            return self._render(scaled)
        direction = 1 if prf.bit("numeric-dir", identity) else -1
        if scaled == 0:
            direction = 1  # keep zero's neighbourhood non-negative
        adjusted = scaled + direction
        if (adjusted < 0) != (scaled < 0) and scaled != 0:
            # Do not let the perturbation cross zero / flip the sign.
            adjusted = scaled - direction
        return self._render(adjusted)

    def extract(self, value: str, prf: KeyedPRF, identity: str) -> Optional[int]:
        scaled = self._parse(value)
        if scaled is None:
            return None
        return abs(scaled) % 2

    def distortion(self, original: str, marked: str) -> float:
        before, after = self._parse(original), self._parse(marked)
        if before is None or after is None:
            return 1.0
        if before == after:
            return 0.0
        return abs(after - before) / max(abs(before), 1)
