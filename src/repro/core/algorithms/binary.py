"""Binary/image watermark plug-in: keyed LSB embedding.

The original WmXML demo supported images; XML carries binary payloads as
base64 text, so this plug-in:

* decodes the payload,
* derives ``spread`` distinct byte offsets from HMAC(key, identity),
* forces the least-significant bit of each chosen byte to the watermark
  bit,
* re-encodes.

Extraction reads the same offsets and takes the majority, which makes a
single carrier instance internally redundant — flipping a few random
bytes of the payload rarely erases the bit.
"""

from __future__ import annotations

import base64
import binascii
from typing import Any, Optional

from repro.core.algorithms.base import (
    AlgorithmError,
    WatermarkAlgorithm,
    register_algorithm,
)
from repro.core.crypto import KeyedPRF


@register_algorithm
class BinaryLSBAlgorithm(WatermarkAlgorithm):
    """LSB embedding into base64-encoded binary payloads."""

    name = "binary-lsb"

    def __init__(self, spread: int = 8) -> None:
        if spread < 1:
            raise AlgorithmError("spread must be >= 1")
        self.spread = spread

    def params(self) -> dict[str, Any]:
        return {"spread": self.spread}

    # -- payload handling ------------------------------------------------------------

    @staticmethod
    def _decode(value: str) -> Optional[bytearray]:
        stripped = value.strip()
        if not stripped or len(stripped) % 4 != 0:
            return None
        try:
            return bytearray(base64.b64decode(stripped, validate=True))
        except (binascii.Error, ValueError):
            return None

    # -- plug-in interface ------------------------------------------------------------

    def applicable(self, value: str) -> bool:
        payload = self._decode(value)
        return payload is not None and len(payload) > 0

    def embed(self, value: str, bit: int, prf: KeyedPRF, identity: str) -> str:
        payload = self._decode(value)
        if not payload:
            return value
        for offset in prf.offsets(identity, self.spread, len(payload)):
            payload[offset] = (payload[offset] & 0xFE) | bit
        return base64.b64encode(bytes(payload)).decode("ascii")

    def extract(self, value: str, prf: KeyedPRF, identity: str) -> Optional[int]:
        payload = self._decode(value)
        if not payload:
            return None
        bits = [
            payload[offset] & 1
            for offset in prf.offsets(identity, self.spread, len(payload))
        ]
        if not bits:
            return None
        ones = sum(bits)
        if ones * 2 == len(bits):
            return None  # tie: unreadable
        return 1 if ones * 2 > len(bits) else 0

    def distortion(self, original: str, marked: str) -> float:
        before, after = self._decode(original), self._decode(marked)
        if before is None or after is None or len(before) != len(after):
            return 1.0
        if not before:
            return 0.0
        changed = sum(1 for a, b in zip(before, after) if a != b)
        return changed / len(before)
