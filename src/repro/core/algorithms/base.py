"""Plug-in watermark algorithm interface and registry.

The paper's architecture (Figure 4) attaches per-type plug-ins (WA1,
WA2, WA3...) to the encoder and decoder: "the system prepares various
plug-in watermarking algorithms for different data types ... numeric
data and images".  This module defines the plug-in contract; concrete
algorithms live alongside it and register themselves by name so that a
stored :class:`~repro.core.record.WatermarkRecord` can name the
algorithm that marked each carrier.

Contract:

* ``embed(value, bit, prf, identity)`` returns the marked value; it must
  be deterministic in its arguments (same key + identity => same
  output), and idempotent (embedding the same bit into an already-marked
  value is a no-op);
* ``extract(value, prf, identity)`` recovers the bit, or None when the
  value cannot carry one;
* ``applicable(value)`` reports whether a value can carry a bit at all;
* ``distortion(original, marked)`` quantifies the perturbation, used by
  the usability analysis.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping, Optional

from repro.core.crypto import KeyedPRF
from repro.errors import WmXMLError


class AlgorithmError(WmXMLError):
    """Unknown algorithm name or invalid algorithm parameters."""

    code = "algorithm-error"


class WatermarkAlgorithm(ABC):
    """Base class for the per-type embedding plug-ins."""

    #: Registry name; subclasses must override.
    name: str = ""

    @abstractmethod
    def embed(self, value: str, bit: int, prf: KeyedPRF, identity: str) -> str:
        """Return ``value`` perturbed to carry ``bit``."""

    @abstractmethod
    def extract(self, value: str, prf: KeyedPRF, identity: str) -> Optional[int]:
        """Recover the embedded bit, or None when unreadable."""

    @abstractmethod
    def applicable(self, value: str) -> bool:
        """True when ``value`` can carry a watermark bit."""

    def distortion(self, original: str, marked: str) -> float:
        """Relative size of the perturbation (0.0 = unchanged).

        The default is a character-level measure; numeric plug-ins
        override with a relative-error measure.
        """
        if original == marked:
            return 0.0
        length = max(len(original), len(marked), 1)
        differing = sum(
            1 for a, b in zip(original.ljust(length), marked.ljust(length))
            if a != b)
        return differing / length

    def params(self) -> dict[str, Any]:
        """The constructor parameters, for persistence in the record."""
        return {}

    def __repr__(self) -> str:
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({rendered})"


_REGISTRY: dict[str, type[WatermarkAlgorithm]] = {}


def register_algorithm(cls: type[WatermarkAlgorithm]) -> type[WatermarkAlgorithm]:
    """Class decorator registering a plug-in under ``cls.name``."""
    if not cls.name:
        raise AlgorithmError(f"{cls.__name__} has no registry name")
    if cls.name in _REGISTRY:
        raise AlgorithmError(f"algorithm {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def algorithm_names() -> list[str]:
    """Registered plug-in names, sorted."""
    return sorted(_REGISTRY)


def create_algorithm(name: str,
                     params: Optional[Mapping[str, Any]] = None) -> WatermarkAlgorithm:
    """Instantiate a registered plug-in with ``params``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; registered: {algorithm_names()}"
        ) from None
    try:
        return cls(**dict(params or {}))
    except TypeError as exc:
        raise AlgorithmError(f"bad parameters for {name!r}: {exc}") from None
