"""Date watermark plug-in: day-of-month parity.

ISO dates (``YYYY-MM-DD``) carry a bit in the parity of the day: even
encodes 0, odd encodes 1.  Embedding moves the day by one, in a keyed
direction, clamped to ``[1, 28]`` so the result is always a valid
calendar date in any month.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.core.algorithms.base import WatermarkAlgorithm, register_algorithm
from repro.core.crypto import KeyedPRF

_DATE_RE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")


@register_algorithm
class DateAlgorithm(WatermarkAlgorithm):
    """Day-parity embedding for ISO ``YYYY-MM-DD`` dates."""

    name = "date"

    def params(self) -> dict[str, Any]:
        return {}

    @staticmethod
    def _parse(value: str) -> Optional[tuple[int, int, int]]:
        match = _DATE_RE.match(value.strip())
        if not match:
            return None
        year, month, day = (int(g) for g in match.groups())
        if not (1 <= month <= 12 and 1 <= day <= 31):
            return None
        return year, month, day

    # -- plug-in interface ------------------------------------------------------------

    def applicable(self, value: str) -> bool:
        return self._parse(value) is not None

    def embed(self, value: str, bit: int, prf: KeyedPRF, identity: str) -> str:
        parsed = self._parse(value)
        if parsed is None:
            return value
        year, month, day = parsed
        if day % 2 != bit:
            direction = 1 if prf.bit("date-dir", identity) else -1
            day += direction
            # Walk back into the always-valid [1, 28] range in parity-
            # preserving steps (±2), so the result is a real date in any
            # month; worst case moves three days (31 -> 28).
            while day > 28:
                day -= 2
            while day < 1:
                day += 2
        return f"{year:04d}-{month:02d}-{day:02d}"

    def extract(self, value: str, prf: KeyedPRF, identity: str) -> Optional[int]:
        parsed = self._parse(value)
        if parsed is None:
            return None
        return parsed[2] % 2

    def distortion(self, original: str, marked: str) -> float:
        before, after = self._parse(original), self._parse(marked)
        if before is None or after is None:
            return 1.0
        return abs(before[2] - after[2]) / 31.0
