"""The versioned WmXML wire protocol (``wmxml-request-v1``).

The service and its client SDK speak JSON envelopes over HTTP:

* Requests to the ``POST`` endpoints are objects tagged
  ``"format": "wmxml-request-v1"`` plus endpoint-specific fields
  (``scheme``, ``document``, ``message``, ...).  ``PUT
  /v1/schemes/{name}`` is the exception: its body is the
  ``wmxml-scheme-v1`` artefact itself, which already carries its own
  format tag.
* Every response is an object tagged ``"format": "wmxml-response-v1"``
  with ``"ok": true`` plus the payload, or ``"ok": false`` plus an
  ``"error"`` object — the :func:`repro.errors.error_payload` form,
  whose ``code`` slug and HTTP status come from the one table in
  :mod:`repro.errors`.

Versioning contract: a ``-v1`` parser must reject any other version
tag (``unsupported-protocol``) rather than guess; a future ``-v2`` can
then change semantics without silently corrupting v1 callers.

This module also defines the request-level protocol errors.  They are
ordinary :class:`~repro.errors.WmXMLError` subclasses with ``code``
slugs, so the service's one ``except WmXMLError`` handler maps them to
HTTP statuses exactly like library errors.
"""

from __future__ import annotations

import json

from repro.errors import WmXMLError, error_payload

#: Version tags of the request and response envelopes.
REQUEST_FORMAT = "wmxml-request-v1"
RESPONSE_FORMAT = "wmxml-response-v1"

#: Every response names the protocol version it speaks.
PROTOCOL_HEADER = "X-WmXML-Protocol"

#: Embed/detect responses expose the compiled pipeline's content
#: fingerprint, so a caching client can tell whether the deployment
#: that served it changed (also the ``ETag`` of ``GET /v1/schemes/*``).
FINGERPRINT_HEADER = "X-WmXML-Pipeline"

#: Default request-body ceiling (bytes).  Large enough for a multi-
#: document batch of real datasets, small enough that one request
#: cannot balloon the daemon's memory.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Default ceiling on wire-registered schemes: ``PUT /v1/schemes``
#: pins each name (and its compiled pipeline) for the daemon's life,
#: so an unbounded registry is an unbounded memory sink.
MAX_SCHEMES = 256


class ServiceError(WmXMLError):
    """Base class for request-level service errors."""

    code = "service-error"


class MalformedRequestError(ServiceError):
    """The request body is not valid JSON / misses required fields."""

    code = "malformed-request"


class UnsupportedProtocolError(ServiceError):
    """The request speaks a format version this daemon does not."""

    code = "unsupported-protocol"


class NotFoundError(ServiceError):
    """No such endpoint or resource."""

    code = "not-found"


class MethodNotAllowedError(ServiceError):
    """The endpoint exists but not for this HTTP method."""

    code = "method-not-allowed"


class OversizeBodyError(ServiceError):
    """The request body exceeds the daemon's configured ceiling."""

    code = "oversize-body"


class RegistryFullError(ServiceError):
    """``PUT /v1/schemes`` would grow the registry past its ceiling."""

    code = "registry-full"


def ok_response(payload: dict) -> dict:
    """Wrap an endpoint payload in the success envelope."""
    return {"format": RESPONSE_FORMAT, "ok": True, **payload}


def error_response(error: BaseException) -> dict:
    """Wrap any error in the error envelope (code from the one table)."""
    return {"format": RESPONSE_FORMAT, "ok": False,
            "error": error_payload(error)}


def parse_json(body: bytes) -> dict:
    """Bytes -> JSON object, or :class:`MalformedRequestError`."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise MalformedRequestError(
            f"request body is not valid JSON: {error}") from error
    if not isinstance(data, dict):
        raise MalformedRequestError(
            f"request body must be a JSON object, got "
            f"{type(data).__name__}")
    return data


def parse_request(body: bytes) -> dict:
    """Parse and version-check a ``wmxml-request-v1`` envelope."""
    data = parse_json(body)
    tag = data.get("format")
    if tag != REQUEST_FORMAT:
        raise UnsupportedProtocolError(
            f"expected a {REQUEST_FORMAT} envelope, got format={tag!r}")
    return data


def required_field(data: dict, name: str, kind: type) -> object:
    """Fetch a typed required field or raise ``malformed-request``."""
    try:
        value = data[name]
    except KeyError:
        raise MalformedRequestError(
            f"request is missing required field {name!r}") from None
    if not isinstance(value, kind):
        raise MalformedRequestError(
            f"request field {name!r} must be {kind.__name__}, got "
            f"{type(value).__name__}")
    return value
