"""The WmXML watermarking daemon: one ``WmXMLSystem`` behind HTTP.

The paper presents WmXML as a system that *sits beside* an XML
database and watermarks/verifies documents on demand (§1, Figure 4);
this module is that deployment shape.  A :class:`WmXMLService` wraps
one :class:`~repro.api.WmXMLSystem` — the secret key never crosses the
wire; documents, records and verdicts do — and exposes the versioned
JSON protocol of :mod:`repro.service.protocol` over a dependency-free
``http.server`` stack:

====================  ======================================================
endpoint              behaviour
====================  ======================================================
POST /v1/embed        watermark one document (raw XML in, marked XML out)
POST /v1/embed/batch  watermark a fleet; rides the PR 4 process pool
POST /v1/detect       verify one suspected copy against a record
POST /v1/detect/batch many copies, one (or per-item) record(s); pooled
GET  /v1/records      persisted registry records (filter + paginate)
GET  /v1/ledger/verify  re-verify the provenance chain end to end
POST /v1/trace        trace a leaked copy against all issued copies
GET  /v1/schemes      registry listing (name -> pipeline fingerprint)
GET  /v1/schemes/{n}  the ``wmxml-scheme-v1`` artefact; ``ETag`` = fingerprint
PUT  /v1/schemes/{n}  register/replace a deployment
GET  /v1/healthz      liveness + registry summary
GET  /v1/stats        request counts and per-endpoint latency
====================  ======================================================

Requests are served by :class:`http.server.ThreadingHTTPServer` — one
thread per request over the compiled, thread-safe pipelines — while
batch endpoints escape the GIL through ``embed_many``/``detect_many``
with the daemon's configured worker-process count.

:meth:`WmXMLService.dispatch` is a pure ``(method, path, body) ->
(status, payload, headers)`` function with no socket I/O, so the whole
routing/error-mapping surface is unit-testable without a server.

Constructed with ``tenants=`` (a :class:`~repro.tenants.TenantDirectory`)
instead of a single system, the same daemon serves many tenants: every
endpoint except ``/v1/healthz`` demands a bearer token, scopes gate each
route (401/403), token buckets answer 429 + ``Retry-After``, and
schemes, records, trace and stats are namespaced per tenant.
"""

from __future__ import annotations

import contextlib
import json
import math
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro import __version__
from repro.api.system import SchemeLike, WmXMLSystem
from repro.core.record import WatermarkRecord
from repro.core.scheme import WatermarkingScheme
from repro.faults import fault_point
from repro.registry import (RegistryNotConfiguredError,
                            RegistryUnavailableError, WatermarkRegistry)
from repro.semantics.shape import DocumentShape
from repro.errors import WmXMLError, error_code, http_status_for
from repro.perf.timers import StageTimer
from repro.service import protocol
from repro.tenants import TenantDirectory
from repro.tenants.errors import (ForbiddenError, RateLimitedError,
                                  UnauthorizedError)
from repro.tenants.tokens import TokenClaims
from repro.xmlmodel.parser import parse
from repro.service.protocol import (
    MalformedRequestError,
    MethodNotAllowedError,
    NotFoundError,
    OversizeBodyError,
    RegistryFullError,
)

#: Accepted strategy values mirror the pipeline's.
from repro.api.pipeline import DETECTION_STRATEGIES


class WmXMLService:
    """Routing, error mapping and stats for one ``WmXMLSystem``.

    Two construction modes, mutually exclusive:

    * ``WmXMLService(system)`` — the classic single-tenant daemon: one
      key, one scheme namespace, no authentication.  Behaviour is
      byte-for-byte what it was before tenancy existed.
    * ``WmXMLService(tenants=directory)`` — multi-tenant: every
      endpoint except ``/v1/healthz`` requires a bearer token, scopes
      gate each route, token buckets rate-limit each tenant, and
      schemes/records/trace/stats are namespaced per tenant.
    """

    def __init__(self, system: Optional[WmXMLSystem] = None, *,
                 tenants: Optional[TenantDirectory] = None,
                 processes: Optional[int] = None,
                 max_body_bytes: int = protocol.MAX_BODY_BYTES,
                 max_schemes: int = protocol.MAX_SCHEMES,
                 retry_after: int = 1) -> None:
        if (system is None) == (tenants is None):
            raise ValueError(
                "pass exactly one of system= or tenants=")
        self.system = system
        self.tenants = tenants
        self.processes = processes
        self.max_body_bytes = max_body_bytes
        self.max_schemes = max_schemes
        #: Delta-seconds advertised in ``Retry-After`` on every 503.
        self.retry_after = retry_after
        # ``max_schemes`` bounds *wire-registered* additions: schemes
        # the operator loaded at boot never count against it.  Tenant
        # mode tracks one ceiling per namespace.
        if system is not None:
            self._scheme_ceiling = len(system.scheme_names()) + max_schemes
            self._scheme_ceilings = {}
        else:
            self._scheme_ceiling = max_schemes
            self._scheme_ceilings = {
                name: len(tenants.scheme_names(name)) + max_schemes
                for name in tenants.tenant_names()}
        # Which tenant the request thread authenticated as, for stats
        # attribution after dispatch's try/except collapses the path.
        self._local = threading.local()
        self._tenant_counters = {
            name: {"requests": 0, "errors": 0, "embedded_documents": 0}
            for name in (tenants.tenant_names()
                         if tenants is not None else ())}
        # Serialises the ceiling check + insert of PUT /v1/schemes so
        # concurrent PUTs cannot race past the ceiling.
        self._registry_lock = threading.Lock()
        self._timer = StageTimer()
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._started = time.monotonic()
        # Graceful degradation: flipped when registry storage fails
        # like a failing disk; healthz probes self-heal it.  Embed and
        # detect keep serving while degraded (embeds unrecorded);
        # registry-only endpoints 503 with Retry-After.
        self._degraded = False
        # In-flight request accounting, so SIGTERM can drain running
        # requests before the process exits (see :meth:`drain`).
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    # -- lifecycle ------------------------------------------------------------

    def begin_request(self) -> None:
        with self._inflight_cv:
            self._inflight += 1

    def end_request(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            if self._inflight <= 0:
                self._inflight_cv.notify_all()

    @property
    def inflight(self) -> int:
        with self._inflight_cv:
            return self._inflight

    def drain(self, timeout: float = 5.0) -> bool:
        """Wait until every in-flight request has been answered.

        The SIGTERM half of graceful shutdown: the server stops
        accepting, then drains, then closes — a request that was being
        served when the signal arrived still gets its response.
        Returns False if requests were still running at ``timeout``.
        """
        deadline = time.monotonic() + timeout
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
        return True

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, method: str, path: str, body: bytes = b"",
                 headers: Optional[dict] = None
                 ) -> tuple[int, Optional[dict], dict]:
        """One request -> ``(status, payload | None, response headers)``.

        Every library or protocol error becomes an error envelope with
        the status from :data:`repro.errors.HTTP_STATUS_BY_CODE`; the
        daemon never leaks a traceback onto the wire.
        """
        label = f"{method} {_endpoint_label(path)}"
        start = time.perf_counter()
        failed = False
        self._local.tenant = None
        try:
            # A fault here models any request-handling crash before
            # routing; one after routing models a late failure with
            # the work already done.  Either way the contract holds:
            # an error envelope, never a dropped connection.
            fault_point("service.dispatch")
            if len(body) > self.max_body_bytes:
                raise OversizeBodyError(
                    f"request body of {len(body)} bytes exceeds the "
                    f"{self.max_body_bytes}-byte ceiling")
            status, payload, extra = self._route(method, path, body,
                                                 headers or {})
            fault_point("service.response")
        except WmXMLError as error:
            failed = True
            if isinstance(error, RegistryUnavailableError):
                self._degraded = True
            status = http_status_for(error_code(error))
            payload = protocol.error_response(error)
            extra = {}
            if isinstance(error, RateLimitedError):
                # 429 carries the bucket's exact refill time (whole
                # seconds, at least 1) so the client SDK knows when
                # the retry can succeed.
                extra = {"Retry-After":
                         str(max(1, math.ceil(error.retry_after)))}
        except Exception as error:  # noqa: BLE001
            # Anything a wire-reachable path raises that is not a
            # WmXMLError (e.g. a KeyError from a half-valid artefact)
            # still becomes an envelope, never a dropped connection.
            failed = True
            status = http_status_for(WmXMLError.code)
            payload = protocol.error_response(
                WmXMLError(f"unhandled {type(error).__name__}: {error}"))
            extra = {}
        response_headers = {protocol.PROTOCOL_HEADER:
                            protocol.RESPONSE_FORMAT}
        response_headers.update(extra)
        if status == 503:
            # Every 503 is a transient condition by contract; tell
            # clients when to come back instead of letting them
            # hammer a struggling daemon.
            response_headers.setdefault("Retry-After",
                                        str(self.retry_after))
        tenant = getattr(self._local, "tenant", None)
        with self._stats_lock:
            self._requests += 1
            self._errors += failed
            self._timer.record(label, time.perf_counter() - start)
            if tenant is not None:
                counters = self._tenant_counters[tenant]
                counters["requests"] += 1
                counters["errors"] += failed
        return status, payload, response_headers

    def note_refusal(self, method: str, path: str) -> None:
        """Count a handler-level refusal (oversize/invalid framing).

        Those never reach :meth:`dispatch`, but operators polling
        ``/v1/stats`` must still see them in the request/error counts.
        """
        # A distinct label: refusals never execute, so mixing their
        # zero-duration samples into the endpoint's bucket would
        # poison its mean latency.
        label = f"{method} {_endpoint_label(path)} (refused)"
        with self._stats_lock:
            self._requests += 1
            self._errors += 1
            self._timer.record(label, 0.0)

    def _route(self, method: str, path: str, body: bytes,
               headers: dict) -> tuple[int, Optional[dict], dict]:
        path, _, query_string = path.partition("?")
        query = urllib.parse.parse_qs(query_string)
        path = path.rstrip("/") or "/"
        if path == "/v1/healthz":
            # Health stays open in tenant mode: load balancers and
            # orchestrators probe it without credentials, and it
            # reveals no tenant data.
            _require_method(method, "GET")
            return 200, protocol.ok_response(self._healthz()), {}
        auth = self._authenticate(method, path, headers)
        if path == "/v1/stats":
            _require_method(method, "GET")
            return 200, protocol.ok_response(self._stats(auth)), {}
        if path == "/v1/embed":
            _require_method(method, "POST")
            return self._embed(protocol.parse_request(body), batch=False,
                               auth=auth)
        if path == "/v1/embed/batch":
            _require_method(method, "POST")
            return self._embed(protocol.parse_request(body), batch=True,
                               auth=auth)
        if path == "/v1/detect":
            _require_method(method, "POST")
            return self._detect(protocol.parse_request(body), batch=False,
                                auth=auth)
        if path == "/v1/detect/batch":
            _require_method(method, "POST")
            return self._detect(protocol.parse_request(body), batch=True,
                                auth=auth)
        if path == "/v1/records":
            _require_method(method, "GET")
            return self._records(query, auth)
        if path == "/v1/ledger/verify":
            _require_method(method, "GET")
            return self._ledger_verify()
        if path == "/v1/trace":
            _require_method(method, "POST")
            return self._trace(protocol.parse_request(body), auth)
        if path == "/v1/schemes":
            _require_method(method, "GET")
            return 200, protocol.ok_response(
                {"schemes": self._system_for(auth).list_schemes()}), {}
        if path.startswith("/v1/schemes/"):
            name = urllib.parse.unquote(path[len("/v1/schemes/"):])
            if method == "GET":
                return self._get_scheme(name, headers, auth)
            if method == "PUT":
                return self._put_scheme(name, body, auth)
            raise MethodNotAllowedError(
                f"{method} not allowed on /v1/schemes/{{name}} "
                "(use GET or PUT)")
        raise NotFoundError(f"no such endpoint: {method} {path}")

    # -- auth / tenancy ------------------------------------------------------------

    def _authenticate(self, method: str, path: str,
                      headers: dict) -> Optional[TokenClaims]:
        """The tenant-mode gate: token -> scopes -> request bucket.

        Single-tenant daemons return ``None`` without looking at the
        headers, so the pre-tenancy wire behaviour is untouched.  The
        order is deliberate: a missing credential is 401 before a
        missing scope is 403 before an empty bucket is 429 — and only
        an *authenticated* request is charged or counted against its
        tenant.
        """
        if self.tenants is None:
            return None
        claims = self.tenants.authenticate(_bearer_token(headers))
        scope = _required_scope(method, path)
        if scope is not None and scope not in claims.scopes:
            raise ForbiddenError(
                f"token for tenant {claims.tenant!r} lacks the "
                f"{scope!r} scope required by {method} {path} "
                f"(granted: {sorted(claims.scopes)})")
        # Attribute before charging: a 429 is the tenant's own
        # traffic, so it must land in that tenant's error counter.
        self._local.tenant = claims.tenant
        self.tenants.charge_request(claims.tenant)
        return claims

    def _system_for(self, auth: Optional[TokenClaims],
                    key_id: Optional[int] = None) -> WmXMLSystem:
        """The system serving this request: the single-tenant one, or
        the authenticated tenant's system under ``key_id`` (``None``
        = the active generation)."""
        if self.tenants is None:
            return self.system
        return self.tenants.system(auth.tenant, key_id=key_id)

    def _registry_source(self) -> Optional[WatermarkRegistry]:
        if self.tenants is not None:
            return self.tenants.registry
        return self.system.registry

    # -- endpoints ------------------------------------------------------------

    def _healthz(self) -> dict:
        # The health probe doubles as the self-heal path: a successful
        # registry read clears the degraded flag, a failing one sets
        # it.  Health always answers 200 — "degraded" is a state
        # report, not an error.
        registry = self._registry_source()
        summary = None
        if registry is not None:
            try:
                summary = {"records": registry.count(),
                           "blocks": registry.backend.block_count()}
                self._degraded = False
            except RegistryUnavailableError as error:
                self._degraded = True
                summary = {"available": False, "error": str(error)}
        payload = {
            "status": "degraded" if self._degraded else "ok",
            "version": __version__,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "processes": self.processes,
            "registry": summary,
        }
        if self.tenants is None:
            payload["schemes"] = self.system.scheme_names()
            payload["key_fingerprint"] = self.system.key_fingerprint
        else:
            # No per-tenant detail on the open probe: just the master
            # key fingerprint (a public hash) and the population size.
            payload["key_fingerprint"] = self.tenants.keys.fingerprint()
            payload["tenants"] = len(self.tenants.tenant_names())
        return payload

    def _stats(self, auth: Optional[TokenClaims] = None) -> dict:
        with self._stats_lock:
            endpoints = {
                name: {"calls": stats.calls,
                       "total_ms": stats.total_ms,
                       "mean_ms": stats.mean_ms}
                for name, stats in self._timer.stages.items()
            }
            payload = {"requests": self._requests,
                       "errors": self._errors,
                       "version": __version__,
                       "uptime_s": round(time.monotonic()
                                         - self._started, 3),
                       "endpoints": endpoints}
            if auth is not None:
                counters = dict(self._tenant_counters[auth.tenant])
                payload["tenant"] = {
                    "name": auth.tenant,
                    **counters,
                    "quota": self.tenants.quota_snapshot(auth.tenant),
                }
            return payload

    def _scheme_argument(self, request: dict) -> SchemeLike:
        scheme = request.get("scheme")
        if isinstance(scheme, (str, dict)):
            return scheme
        if scheme is None:
            raise MalformedRequestError(
                "request is missing required field 'scheme' "
                "(a registered name or an inline wmxml-scheme-v1 object)")
        raise MalformedRequestError(
            f"request field 'scheme' must be a name or an object, got "
            f"{type(scheme).__name__}")

    def _embed(self, request: dict, batch: bool,
               auth: Optional[TokenClaims] = None
               ) -> tuple[int, dict, dict]:
        system = self._system_for(auth)
        scheme = self._scheme_argument(request)
        recipient = _request_recipient(request)
        if recipient is not None:
            # Fingerprinted issuance: the recipient id is the message
            # (self-describing evidence) under the derived key.
            pipeline = system.recipient_pipeline(scheme, recipient)
            message = recipient
        else:
            pipeline = system.pipeline(scheme)
            message = protocol.required_field(request, "message", str)
        if batch:
            documents = _document_list(request)
            processes = self.processes
        else:
            documents = [protocol.required_field(request, "document", str)]
            processes = None
        if auth is not None:
            # The document bucket charges per embedded copy, before
            # any compute is spent — a 429'd batch costs the daemon
            # nothing but the parse.
            self.tenants.charge_documents(auth.tenant, len(documents))
        # Routed through the system (not the pipeline) so an attached
        # registry records every copy that leaves over the wire.  When
        # registry storage is dark the daemon degrades instead of
        # refusing: the embed still serves, flagged ``recorded: false``
        # so the caller knows this copy left no ledger trace.
        recorded: Optional[bool] = None
        if self._registry_source() is not None:
            recorded = not self._degraded or self._registry_recovered()
        if recorded is False:
            results = pipeline.embed_many(documents, message,
                                          processes=processes,
                                          output="xml")
        else:
            try:
                results = system.embed_many(
                    scheme, documents, message, processes=processes,
                    output="xml", recipient=recipient)
            except RegistryUnavailableError:
                # The batched append is all-or-nothing, so nothing was
                # persisted; serve the embed unrecorded.  (Embedding
                # is deterministic, so the re-run is bit-identical.)
                self._degraded = True
                recorded = False
                results = pipeline.embed_many(documents, message,
                                              processes=processes,
                                              output="xml")
        if batch:
            payload = {"results": [_embed_payload(item)
                                   for item in results]}
        else:
            payload = _embed_payload(results[0])
        if recorded is not None:
            payload["recorded"] = recorded
        if auth is not None:
            payload["tenant"] = auth.tenant
            payload["key_id"] = system.key_id
            with self._stats_lock:
                self._tenant_counters[auth.tenant][
                    "embedded_documents"] += len(documents)
        return 200, protocol.ok_response(payload), {
            protocol.FINGERPRINT_HEADER: pipeline.fingerprint}

    def _detect(self, request: dict, batch: bool,
                auth: Optional[TokenClaims] = None
                ) -> tuple[int, dict, dict]:
        scheme = self._scheme_argument(request)
        expected = request.get("expected")
        if expected is not None and not isinstance(expected, str):
            raise MalformedRequestError(
                "request field 'expected' must be a string")
        strategy = request.get("strategy", "auto")
        if strategy not in DETECTION_STRATEGIES:
            raise MalformedRequestError(
                f"unknown detection strategy {strategy!r}; choices: "
                f"{DETECTION_STRATEGIES}")
        shape = _request_shape(request)
        if batch:
            documents = _document_list(request)
            records = _record_list(request, len(documents))
        else:
            documents = [protocol.required_field(request, "document",
                                                 str)]
            records = [WatermarkRecord.from_dict(
                protocol.required_field(request, "record", dict))]
        pipeline = self._detect_system(auth, records).pipeline(scheme)
        if batch:
            outcomes = pipeline.detect_many(
                list(zip(documents, records)), expected=expected,
                shape=shape, strategy=strategy,
                processes=self.processes)
            payload = {"results": [outcome.to_dict()
                                   for outcome in outcomes]}
        else:
            outcome = pipeline.detect_many(
                [(documents[0], records[0])], expected=expected,
                shape=shape, strategy=strategy)[0]
            payload = {"result": outcome.to_dict()}
        return 200, protocol.ok_response(payload), {
            protocol.FINGERPRINT_HEADER: pipeline.fingerprint}

    def _detect_system(self, auth: Optional[TokenClaims],
                       records: list) -> WmXMLSystem:
        """The system whose key can verify these records.

        Tenant mode resolves each record's stamped generation (a
        record from another tenant's namespace is 403, a forged
        ``key_id`` is refused by the key map); a batch that mixes
        generations would silently mis-verify under a single key, so
        it is rejected outright.  Unstamped records verify under the
        caller's active generation.
        """
        if self.tenants is None:
            return self.system
        systems = {self.tenants.system_for_record(auth.tenant, record)
                   for record in records}
        if len(systems) > 1:
            raise MalformedRequestError(
                "detect batch mixes records from different key "
                "generations; split the batch per key_id")
        return systems.pop()

    # -- registry endpoints ------------------------------------------------------------

    def _registry(self) -> WatermarkRegistry:
        registry = self._registry_source()
        if registry is None:
            raise RegistryNotConfiguredError(
                "this daemon runs without a registry; restart it with "
                "--registry path.db to persist and query issued copies")
        if self._degraded and not self._registry_recovered():
            # Registry-only endpoints answer 503 + Retry-After while
            # storage is dark, without re-poking the failing backend
            # on the full query path.
            raise RegistryUnavailableError(
                "registry storage is currently unavailable; the "
                "daemon is serving in degraded mode — retry shortly")
        return registry

    def _registry_recovered(self) -> bool:
        """One cheap probe: a readable registry clears the flag."""
        registry = self._registry_source()
        try:
            registry.backend.record_count()
        except RegistryUnavailableError:
            return False
        self._degraded = False
        return True

    def _scheme_filters(self, query: dict,
                        auth: Optional[TokenClaims]
                        ) -> Optional[list[str]]:
        """The ``scheme`` query param as registry fingerprints: a
        registered name resolves to its fingerprint(s), anything else
        passes through as a raw pipeline fingerprint.

        Tenant mode resolves a name across *every* key generation —
        records embedded before a rotation carry the older
        generation's fingerprint, and a tenant asking for "their
        scheme" means all of them.
        """
        value = _single_param(query, "scheme")
        if value is None:
            return None
        if self.tenants is not None:
            if value in self.tenants.scheme_names(auth.tenant):
                return self.tenants.scheme_fingerprints(
                    auth.tenant, value)
            return [value]
        if value in self.system.scheme_names():
            return [self.system.scheme_fingerprint(value)]
        return [value]

    def _records(self, query: dict,
                 auth: Optional[TokenClaims] = None
                 ) -> tuple[int, dict, dict]:
        registry = self._registry()
        recipient = _single_param(query, "recipient")
        fingerprints = self._scheme_filters(query, auth)
        document_hash = _single_param(query, "document_hash")
        tenant = auth.tenant if auth is not None else None
        offset = _int_param(query, "offset", 0)
        limit = _int_param(query, "limit", 100)
        if offset < 0 or limit < 0:
            raise MalformedRequestError(
                "'offset' and 'limit' must be non-negative")
        if fingerprints is None or len(fingerprints) == 1:
            fingerprint = fingerprints[0] if fingerprints else None
            entries = registry.records(
                recipient=recipient, scheme_fingerprint=fingerprint,
                document_hash=document_hash, tenant=tenant,
                offset=offset, limit=limit)
            total = registry.count(
                recipient=recipient, scheme_fingerprint=fingerprint,
                document_hash=document_hash, tenant=tenant)
        else:
            # A rotated scheme spans several fingerprints; merge the
            # per-generation result sets back into sequence order and
            # page the merge by hand.
            merged = []
            for fingerprint in fingerprints:
                merged.extend(registry.records(
                    recipient=recipient,
                    scheme_fingerprint=fingerprint,
                    document_hash=document_hash, tenant=tenant))
            merged.sort(key=lambda entry: entry.sequence
                        if entry.sequence is not None else 0)
            total = len(merged)
            entries = merged[offset:offset + limit]
        return 200, protocol.ok_response({
            "records": [entry.to_dict() for entry in entries],
            "total": total, "offset": offset, "limit": limit,
        }), {}

    def _ledger_verify(self) -> tuple[int, dict, dict]:
        verification = self._registry().verify_chain()
        # A broken chain is a conflict between the stored rows and the
        # append-only contract -> the chain-broken envelope (409).
        verification.raise_if_broken()
        return 200, protocol.ok_response(
            {"ledger": verification.to_dict()}), {}

    def _trace(self, request: dict,
               auth: Optional[TokenClaims] = None
               ) -> tuple[int, dict, dict]:
        self._registry()
        scheme = self._scheme_argument(request)
        document = parse(
            protocol.required_field(request, "document", str),
            strip_whitespace=True)
        recipients = request.get("recipients")
        if recipients is not None and (
                not isinstance(recipients, list)
                or not all(isinstance(item, str) for item in recipients)):
            raise MalformedRequestError(
                "request field 'recipients' must be a list of strings")
        strategy = request.get("strategy", "auto")
        if strategy not in DETECTION_STRATEGIES:
            raise MalformedRequestError(
                f"unknown detection strategy {strategy!r}; choices: "
                f"{DETECTION_STRATEGIES}")
        if auth is not None:
            # The directory's trace never leaves the tenant's registry
            # namespace and sweeps every key generation of the scheme.
            trace = self.tenants.trace(
                auth.tenant, scheme, document,
                shape=_request_shape(request), strategy=strategy,
                recipients=recipients)
        else:
            trace = self.system.trace(
                scheme, document, shape=_request_shape(request),
                strategy=strategy, recipients=recipients)
        return 200, protocol.ok_response({"trace": trace.to_dict()}), {
            protocol.FINGERPRINT_HEADER:
                self._system_for(auth).scheme_fingerprint(scheme)}

    def _get_scheme(self, name: str, headers: dict,
                    auth: Optional[TokenClaims] = None
                    ) -> tuple[int, Optional[dict], dict]:
        # Atomic pair: a concurrent PUT must not pair the old body
        # with the new ETag (which would pin conditional GETs to the
        # stale scheme) — and repeat polls hit the fingerprint cache.
        scheme, fingerprint = self._system_for(auth) \
            .scheme_with_fingerprint(name)
        etag = f'"{fingerprint}"'
        response_headers = {"ETag": etag,
                            protocol.FINGERPRINT_HEADER: fingerprint}
        if _etag_matches(_if_none_match(headers), etag):
            return 304, None, response_headers
        return 200, protocol.ok_response(
            {"name": name, "scheme": scheme.to_dict(),
             "fingerprint": fingerprint}), response_headers

    def _put_scheme(self, name: str, body: bytes,
                    auth: Optional[TokenClaims] = None
                    ) -> tuple[int, dict, dict]:
        # The body is the wmxml-scheme-v1 artefact itself (it carries
        # its own format tag), not a request envelope.
        scheme = WatermarkingScheme.from_dict(protocol.parse_json(body))
        with self._registry_lock:
            if auth is not None:
                registered = self.tenants.scheme_names(auth.tenant)
                ceiling = self._scheme_ceilings[auth.tenant]
                if (name not in registered
                        and len(registered) >= ceiling):
                    raise RegistryFullError(
                        f"tenant {auth.tenant!r} holds "
                        f"{len(registered)} schemes "
                        f"({self.max_schemes} wire-registered "
                        "allowed); replace an existing name or raise "
                        "--max-schemes")
                self.tenants.register(auth.tenant, name, scheme)
            else:
                registered = self.system.scheme_names()
                if (name not in registered
                        and len(registered) >= self._scheme_ceiling):
                    raise RegistryFullError(
                        f"registry holds {len(registered)} schemes "
                        f"({self.max_schemes} wire-registered "
                        "allowed); replace an existing name or raise "
                        "--max-schemes")
                self.system.add_scheme(name, scheme)
        # Fingerprint the object we registered, not the name: a
        # concurrent PUT to the same name must not leak its fingerprint
        # into our response/ETag.
        fingerprint = self._system_for(auth).scheme_fingerprint(scheme)
        return 200, protocol.ok_response(
            {"registered": name, "fingerprint": fingerprint}), {
                "ETag": f'"{fingerprint}"',
                protocol.FINGERPRINT_HEADER: fingerprint}


def _require_method(method: str, allowed: str) -> None:
    if method != allowed:
        raise MethodNotAllowedError(
            f"{method} not allowed here (use {allowed})")


def _bearer_token(headers: dict) -> Optional[str]:
    """The token of an ``Authorization: Bearer <token>`` header.

    ``None`` when the header is absent (the verifier turns that into
    a 401 with its own message); a present-but-malformed header is
    refused here with a hint at the expected shape.
    """
    for key, value in headers.items():
        if key.lower() == "authorization":
            kind, _, token = value.strip().partition(" ")
            token = token.strip()
            if kind.lower() != "bearer" or not token:
                raise UnauthorizedError(
                    "Authorization header must be 'Bearer <token>'")
            return token
    return None


def _required_scope(method: str, path: str) -> Optional[str]:
    """The scope a route demands, or ``None`` for any valid token.

    ``/v1/stats`` needs only authentication (every tenant may read
    its own counters); unknown paths also map to ``None`` so probing
    an invalid URL with a valid token answers 404, while probing it
    without one answers 401 — the URL space is not enumerable
    anonymously.
    """
    if path in ("/v1/embed", "/v1/embed/batch"):
        return "embed"
    if path in ("/v1/detect", "/v1/detect/batch"):
        return "detect"
    if path == "/v1/trace":
        return "trace"
    if path in ("/v1/records", "/v1/ledger/verify"):
        return "records"
    if path == "/v1/schemes" or path.startswith("/v1/schemes/"):
        return "schemes-write" if method == "PUT" else "schemes"
    return None


#: Routed paths get their own stats bucket; everything else collapses
#: to one, so a scanner probing random URLs cannot grow the StageTimer
#: (and every /v1/stats payload) without bound.
_KNOWN_ENDPOINTS = frozenset({
    "/v1/healthz", "/v1/stats", "/v1/embed", "/v1/embed/batch",
    "/v1/detect", "/v1/detect/batch", "/v1/schemes",
    "/v1/records", "/v1/ledger/verify", "/v1/trace",
})


def _single_param(query: dict, name: str) -> Optional[str]:
    """The single value of a query param, or None when absent."""
    values = query.get(name)
    if not values:
        return None
    if len(values) > 1:
        raise MalformedRequestError(
            f"query parameter {name!r} given {len(values)} times")
    return values[0]


def _int_param(query: dict, name: str, default: int) -> int:
    value = _single_param(query, name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise MalformedRequestError(
            f"query parameter {name!r} must be an integer, got "
            f"{value!r}") from None


def _request_recipient(request: dict) -> Optional[str]:
    recipient = request.get("recipient")
    if recipient is None:
        return None
    if not isinstance(recipient, str) or not recipient:
        raise MalformedRequestError(
            "request field 'recipient' must be a non-empty string")
    return recipient


def _endpoint_label(path: str) -> str:
    """Stable stats label: named-scheme paths collapse to one bucket."""
    path = path.split("?", 1)[0].rstrip("/") or "/"
    if path.startswith("/v1/schemes/"):
        return "/v1/schemes/{name}"
    if path in _KNOWN_ENDPOINTS:
        return path
    return "(unknown)"


def _if_none_match(headers: dict) -> Optional[str]:
    for key, value in headers.items():
        if key.lower() == "if-none-match":
            return value
    return None


def _etag_matches(header_value: Optional[str], etag: str) -> bool:
    """RFC 7232 If-None-Match: lists, weak validators and ``*``.

    Fingerprint ETags are content hashes, so a weak match is as good
    as a strong one here.
    """
    if header_value is None:
        return False
    if header_value.strip() == "*":
        return True
    for candidate in header_value.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


def _request_shape(request: dict) -> Optional[DocumentShape]:
    """The suspected copy's *current* organisation, if reorganized.

    Figure 2 of the paper: detecting a reorganized copy needs the
    document's current shape so every stored query can be rewritten
    for it — without a wire field for it, remote detection of
    reorganized copies would be impossible.
    """
    shape = request.get("shape")
    if shape is None:
        return None
    if not isinstance(shape, dict):
        raise MalformedRequestError(
            "request field 'shape' must be a shape object")
    try:
        return DocumentShape.from_dict(shape)
    except WmXMLError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise MalformedRequestError(
            f"malformed 'shape' object: {error}") from error


def _document_list(request: dict) -> list[str]:
    documents = protocol.required_field(request, "documents", list)
    if not documents or not all(isinstance(item, str)
                                for item in documents):
        raise MalformedRequestError(
            "request field 'documents' must be a non-empty list of "
            "XML strings")
    return documents


def _record_list(request: dict, count: int) -> list[WatermarkRecord]:
    """One shared record or per-item ``records``, aligned with documents.

    The shared form re-uses one ``WatermarkRecord`` *object* for every
    item, which downstream lets the pooled engine ship it once per
    chunk instead of once per document.
    """
    if "records" in request:
        entries = protocol.required_field(request, "records", list)
        if len(entries) != count:
            raise MalformedRequestError(
                f"'records' has {len(entries)} entries for {count} "
                "documents")
        return [WatermarkRecord.from_dict(entry) for entry in entries]
    record = WatermarkRecord.from_dict(
        protocol.required_field(request, "record", dict))
    return [record] * count


def _embed_payload(result) -> dict:
    return {"xml": result.xml, "record": result.record.to_dict(),
            "stats": result.stats.to_dict()}


# -- the HTTP layer ------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Thin socket adapter around :meth:`WmXMLService.dispatch`."""

    service: WmXMLService  # set on the subclass built by make_server
    protocol_version = "HTTP/1.1"
    quiet = True
    # Socket timeout: a client that claims a Content-Length but never
    # sends the body (or idles a keep-alive connection) must not pin a
    # server thread forever.  BaseHTTPRequestHandler turns the timeout
    # into close_connection.
    timeout = 60

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - operator convenience
            super().log_message(format, *args)

    def _refuse(self, error: WmXMLError) -> None:
        """Answer an error envelope and close: the body stays unread,
        which would desync the next keep-alive request."""
        self.close_connection = True
        self.service.note_refusal(self.command, self.path)
        self._respond(http_status_for(error_code(error)),
                      protocol.error_response(error),
                      {protocol.PROTOCOL_HEADER:
                       protocol.RESPONSE_FORMAT},
                      head_only=self.command == "HEAD")

    def _handle(self) -> None:
        if self.headers.get("Transfer-Encoding"):
            # Chunked bodies are unsupported: reading Content-Length
            # bytes would leave the chunks unread on the stream.
            self._refuse(MalformedRequestError(
                "Transfer-Encoding is not supported; send a "
                "Content-Length body"))
            return
        raw_length = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            length = -1
        if length < 0:
            # A negative value would turn rfile.read into read-to-EOF
            # (blocking the thread, ignoring the body ceiling).
            self._refuse(MalformedRequestError(
                f"invalid Content-Length: {raw_length!r}"))
            return
        if length > self.service.max_body_bytes:
            # Refuse without reading the oversize body.
            self._refuse(OversizeBodyError(
                f"request body of {length} bytes exceeds the "
                f"{self.service.max_body_bytes}-byte ceiling"))
            return
        body = self.rfile.read(length) if length else b""
        # HEAD is GET with the body suppressed (health probes use it).
        method = "GET" if self.command == "HEAD" else self.command
        # In-flight accounting brackets dispatch *and* the response
        # write, so a SIGTERM drain only returns once the bytes of
        # every running request are on the wire.
        self.service.begin_request()
        try:
            status, payload, headers = self.service.dispatch(
                method, self.path, body, dict(self.headers))
            self._respond(status, payload, headers,
                          head_only=self.command == "HEAD")
        finally:
            self.service.end_request()

    def _respond(self, status: int, payload: Optional[dict],
                 headers: dict, head_only: bool = False) -> None:
        data = (b"" if payload is None
                else json.dumps(payload).encode("utf-8"))
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if self.close_connection:
            self.send_header("Connection", "close")
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        if data and not head_only:
            self.wfile.write(data)

    # Every verb routes through dispatch so even a DELETE/PATCH gets
    # the method-not-allowed *envelope*, not http.server's HTML 501;
    # HEAD answers like GET minus the body.
    do_GET = _handle
    do_HEAD = _handle
    do_POST = _handle
    do_PUT = _handle
    do_DELETE = _handle
    do_PATCH = _handle
    do_OPTIONS = _handle


def make_server(service: WmXMLService, host: str = "127.0.0.1",
                port: int = 0, quiet: bool = True) -> ThreadingHTTPServer:
    """A ready-to-run threading HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address[1]``) — what tests and the loopback bench
    stage use.  Call ``server.serve_forever()`` to run and
    ``server.shutdown()`` (from another thread) to stop.
    """
    handler = type("WmXMLHandler", (_Handler,),
                   {"service": service, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


@contextlib.contextmanager
def running_server(service: WmXMLService, host: str = "127.0.0.1",
                   port: int = 0, quiet: bool = True,
                   drain_timeout: float = 5.0):
    """A served daemon for the scope of a ``with`` block.

    The one start/stop choreography (serve on a thread, ``shutdown()``
    to stop accepting, **drain in-flight requests**, then
    ``server_close()`` and join) shared by the CLI, the bench's
    loopback stage and the tests — yields the bound server so callers
    read ``server.server_address``.  The drain step is what makes
    SIGTERM graceful: a request being served when shutdown starts
    still gets its response before the socket closes.
    """
    server = make_server(service, host=host, port=port, quiet=quiet)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        service.drain(timeout=drain_timeout)
        server.server_close()
        thread.join(timeout=5)
