"""``WmXMLClient`` — the remote twin of :class:`repro.api.Pipeline`.

The client mirrors the pipeline surface (``embed`` / ``detect`` /
``embed_many`` / ``detect_many``) over plain :mod:`urllib`, speaking
the ``wmxml-request-v1``/``wmxml-response-v1`` protocol and
round-tripping the system's versioned JSON artefacts — so local and
remote callers are interchangeable behind one interface::

    client = WmXMLClient("http://127.0.0.1:8420", scheme="books")
    result = client.embed(document, "(c) me")      # EmbeddingResult
    outcome = client.detect(copy, result.record)   # DetectionResult
    assert outcome.detected

Embedding results come back in the batch engine's ``output="xml"``
shape — ``result.xml`` carries the marked markup, ``result.document``
is ``None`` until ``result.to_document()`` parses it — which is
bit-identical to a local ``Pipeline`` embed of the same text.

Failure model: a connection refused (daemon still starting, restarting
behind a supervisor) is retried ``retries`` times with exponential
backoff before :class:`ServiceUnavailableError` — refusal proves the
request was never sent, so *every* request is safe to retry that way.
A mid-request disconnect is different: the daemon may already have
processed what it read, so only **idempotent** requests (GET/PUT, and
the POST endpoints that don't append to the ledger: detect, trace) are
retried; a disconnected embed raises ``connection-closed`` instead of
risking a double-append.  A 503 answer (daemon degraded, registry
storage dark) or a 429 (a multi-tenant daemon rate-limiting this
tenant) is retried honoring the server's ``Retry-After`` header
(capped at :data:`RETRY_AFTER_CAP`) — safe even for embeds, because
the daemon's batched single-transaction append persists nothing on
failure and a 429 is refused before any work happens.  An error envelope from the daemon raises
:class:`RemoteServiceError` carrying the server's stable ``code`` slug
and HTTP status.  Everything descends from
:class:`~repro.errors.WmXMLError`, so the facade's one-handler contract
holds across the wire.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Iterable, Optional, Union

from repro.core.decoder import DetectionResult
from repro.core.encoder import EmbeddingResult, EmbeddingStats
from repro.core.fingerprint import TraceResult
from repro.core.record import WatermarkRecord, all_same_record
from repro.core.scheme import WatermarkingScheme
from repro.core.watermark import Watermark
from repro.errors import WatermarkDecodeError, WmXMLError, http_status_for
from repro.service import protocol
from repro.service.protocol import ServiceError
from repro.xmlmodel.serializer import serialize
from repro.xmlmodel.tree import Document

#: What the client accepts wherever the pipeline accepts a document.
DocumentLike = Union[Document, str]

#: Ceiling on one backoff sleep (seconds): the exponential ramp stops
#: doubling here, so a high retry count means "wait longer", never
#: "sleep for hours".
RETRY_DELAY_CAP = 2.0

#: Ceiling on honoring a server-sent ``Retry-After`` (seconds): the
#: client trusts the daemon's pacing hint but never lets a bogus or
#: hostile header park it for minutes.
RETRY_AFTER_CAP = 5.0

#: POST endpoints that are read-only on the server (no ledger append),
#: and therefore safe to retry after an ambiguous disconnect.
IDEMPOTENT_POST_PATHS = frozenset(
    {"/v1/detect", "/v1/detect/batch", "/v1/trace"})


def _is_idempotent(method: str, path: str) -> bool:
    """Whether a replay of this request cannot change server state.

    GET/HEAD/PUT are idempotent by HTTP semantics (PUT /v1/schemes
    re-registers the same artefact).  POST embeds append to the
    provenance ledger — replaying one after an ambiguous disconnect
    could double-append — so only the read-only POSTs qualify.
    """
    if method in ("GET", "HEAD", "PUT"):
        return True
    return (path.split("?", 1)[0].rstrip("/") or "/") \
        in IDEMPOTENT_POST_PATHS


def _retry_after_delay(header: Optional[str], fallback: float) -> float:
    """The sleep a 503 asks for: the header's delta-seconds, capped."""
    if header is not None:
        try:
            return min(max(float(header), 0.0), RETRY_AFTER_CAP)
        except ValueError:
            pass  # HTTP-date or garbage: use our own backoff
    return min(fallback, RETRY_AFTER_CAP)


class ServiceUnavailableError(ServiceError):
    """No daemon answered (connection refused after every retry)."""

    code = "service-unavailable"


class RemoteServiceError(ServiceError):
    """The daemon answered with an error envelope.

    ``code`` is the server's stable slug (instance attribute — it
    overrides the class default so ``repro.errors.error_code`` relays
    it verbatim), ``http_status`` the response status.
    """

    code = "remote-error"

    def __init__(self, code: str, message: str,
                 http_status: Optional[int] = None) -> None:
        super().__init__(message)
        self.code = code
        self.http_status = (http_status if http_status is not None
                            else http_status_for(code))

    def __reduce__(self):
        # Exception's default __reduce__ replays only args=(message,),
        # which breaks the three-argument __init__ when the error is
        # pickled back from a process-pool worker.
        return (RemoteServiceError,
                (self.code, str(self), self.http_status))


class WmXMLClient:
    """A remote pipeline bound to one daemon (and usually one scheme)."""

    def __init__(self, base_url: str, scheme: Union[str, dict, None] = None,
                 *, token: Optional[str] = None, timeout: float = 30.0,
                 retries: int = 3, retry_delay: float = 0.1) -> None:
        self.base_url = base_url.rstrip("/")
        self.scheme = scheme
        #: Bearer token for a multi-tenant daemon (``wmxml token
        #: mint``); single-tenant daemons ignore the header entirely.
        self.token = token
        self.timeout = timeout
        self.retries = retries
        self.retry_delay = retry_delay

    # -- the pipeline surface ------------------------------------------------------------

    def embed(self, document: DocumentLike, message: str,
              scheme: Union[str, dict, None] = None) -> EmbeddingResult:
        """Embed ``message`` into one document on the daemon."""
        payload = self._request("POST", "/v1/embed", {
            "scheme": self._scheme_argument(scheme),
            "document": _as_xml(document),
            "message": _as_message(message),
        })
        return _embedding_result(payload)

    def embed_many(self, documents: Iterable[DocumentLike], message: str,
                   scheme: Union[str, dict, None] = None
                   ) -> list[EmbeddingResult]:
        """Embed one message into a fleet; the daemon may pool workers."""
        batch = [_as_xml(item) for item in documents]
        if not batch:
            # Interchangeability: the local pipeline returns [] too.
            return []
        payload = self._request("POST", "/v1/embed/batch", {
            "scheme": self._scheme_argument(scheme),
            "documents": batch,
            "message": _as_message(message),
        })
        return [_embedding_result(item) for item in payload["results"]]

    def detect(self, document: DocumentLike, record: WatermarkRecord, *,
               expected: Optional[str] = None,
               shape: Optional["DocumentShape"] = None,
               strategy: str = "auto",
               scheme: Union[str, dict, None] = None) -> DetectionResult:
        """Verify one suspected copy against a record on the daemon.

        ``shape`` names the copy's *current* organisation when it has
        been reorganized (Figure 2) — mirrors ``Pipeline.detect``.
        """
        payload = self._request("POST", "/v1/detect", {
            "scheme": self._scheme_argument(scheme),
            "document": _as_xml(document),
            "record": _as_record_dict(record),
            "expected": _as_optional_message(expected),
            "shape": _as_shape_dict(shape),
            "strategy": strategy,
        })
        return DetectionResult.from_dict(payload["result"])

    def detect_many(self,
                    items: Iterable[tuple[DocumentLike, WatermarkRecord]],
                    *, expected: Optional[str] = None,
                    shape: Optional["DocumentShape"] = None,
                    strategy: str = "auto",
                    scheme: Union[str, dict, None] = None
                    ) -> list[DetectionResult]:
        """Check many (document, record) pairs in one request.

        When every pair carries the same record — the piracy-hunting
        batch — the record is sent once for the whole request, the wire
        twin of the pooled engine's shared-record chunks.
        """
        batch = list(items)
        if not batch:
            # Interchangeability: the local pipeline returns [] too.
            return []
        request: dict = {
            "scheme": self._scheme_argument(scheme),
            "documents": [_as_xml(document) for document, _ in batch],
            "expected": _as_optional_message(expected),
            "shape": _as_shape_dict(shape),
            "strategy": strategy,
        }
        records = [record for _, record in batch]
        if all_same_record(records):
            request["record"] = _as_record_dict(records[0])
        else:
            request["records"] = [_as_record_dict(record)
                                  for record in records]
        payload = self._request("POST", "/v1/detect/batch", request)
        return [DetectionResult.from_dict(item)
                for item in payload["results"]]

    # -- provenance ------------------------------------------------------------

    def issue(self, document: DocumentLike, recipient: str,
              scheme: Union[str, dict, None] = None) -> EmbeddingResult:
        """Issue a fingerprinted copy to ``recipient`` on the daemon.

        The recipient id becomes the embedded message under that
        recipient's derived key; a registry-enabled daemon records the
        copy, making it traceable by :meth:`trace`.
        """
        payload = self._request("POST", "/v1/embed", {
            "scheme": self._scheme_argument(scheme),
            "document": _as_xml(document),
            "recipient": recipient,
        })
        return _embedding_result(payload)

    def issue_many(self, documents: Iterable[DocumentLike],
                   recipient: str,
                   scheme: Union[str, dict, None] = None
                   ) -> list[EmbeddingResult]:
        """Issue fingerprinted copies of a fleet to one recipient."""
        batch = [_as_xml(item) for item in documents]
        if not batch:
            return []
        payload = self._request("POST", "/v1/embed/batch", {
            "scheme": self._scheme_argument(scheme),
            "documents": batch,
            "recipient": recipient,
        })
        return [_embedding_result(item) for item in payload["results"]]

    def records(self, *, recipient: Optional[str] = None,
                scheme: Optional[str] = None,
                document_hash: Optional[str] = None,
                offset: int = 0, limit: int = 100) -> dict:
        """Query the daemon's persisted registry records.

        Returns ``{"records": [wmxml-registry-record-v1, ...],
        "total": n, "offset": ..., "limit": ...}``.  ``scheme`` may be
        a registered name or a pipeline fingerprint.
        """
        params = {"offset": str(offset), "limit": str(limit)}
        if recipient is not None:
            params["recipient"] = recipient
        if scheme is not None:
            params["scheme"] = scheme
        if document_hash is not None:
            params["document_hash"] = document_hash
        path = "/v1/records?" + urllib.parse.urlencode(params)
        return _payload_of(self._request("GET", path))

    def verify_ledger(self) -> dict:
        """Re-verify the daemon's provenance chain.

        Returns the intact verification report; a tampered chain
        raises :class:`RemoteServiceError` with code ``chain-broken``.
        """
        return self._request("GET", "/v1/ledger/verify")["ledger"]

    def trace(self, document: DocumentLike, *,
              recipients: Optional[list[str]] = None,
              shape: Optional["DocumentShape"] = None,
              strategy: str = "auto",
              scheme: Union[str, dict, None] = None) -> "TraceResult":
        """Trace a suspected leak against every persisted issued copy."""
        request: dict = {
            "scheme": self._scheme_argument(scheme),
            "document": _as_xml(document),
            "shape": _as_shape_dict(shape),
            "strategy": strategy,
        }
        if recipients is not None:
            request["recipients"] = list(recipients)
        payload = self._request("POST", "/v1/trace", request)
        return TraceResult.from_dict(payload["trace"])

    # -- registry / operations ------------------------------------------------------------

    def list_schemes(self) -> dict[str, str]:
        """Registered deployments: ``{name: pipeline fingerprint}``."""
        return self._request("GET", "/v1/schemes")["schemes"]

    def get_scheme(self, name: str) -> WatermarkingScheme:
        payload = self._request("GET", _scheme_path(name))
        return WatermarkingScheme.from_dict(payload["scheme"])

    def put_scheme(self, name: str,
                   scheme: Union[WatermarkingScheme, dict]) -> str:
        """Register/replace a deployment; returns its fingerprint."""
        if isinstance(scheme, WatermarkingScheme):
            scheme = scheme.to_dict()
        payload = self._send("PUT", _scheme_path(name),
                             json.dumps(scheme).encode("utf-8"))
        return payload["fingerprint"]

    def healthz(self) -> dict:
        return _payload_of(self._request("GET", "/v1/healthz"))

    def stats(self) -> dict:
        return _payload_of(self._request("GET", "/v1/stats"))

    # -- transport ------------------------------------------------------------

    def _scheme_argument(self,
                        scheme: Union[str, dict, None]) -> Union[str, dict]:
        resolved = self.scheme if scheme is None else scheme
        if resolved is None:
            raise ServiceError(
                "no scheme: pass one per call or bind the client "
                "(WmXMLClient(url, scheme=...))")
        if isinstance(resolved, WatermarkingScheme):
            return resolved.to_dict()
        return resolved

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        body = None
        if payload is not None:
            body = json.dumps(
                {"format": protocol.REQUEST_FORMAT, **payload}
            ).encode("utf-8")
        return self._send(method, path, body)

    def _send(self, method: str, path: str,
              body: Optional[bytes]) -> dict:
        url = f"{self.base_url}{path}"
        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        request = urllib.request.Request(
            url, data=body, method=method, headers=headers)
        idempotent = _is_idempotent(method, path)
        attempt = 0
        while True:
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as response:
                    return self._decode(response.read())
            except urllib.error.HTTPError as error:
                if error.code in (503, 429) and attempt < self.retries:
                    # The daemon is up but degraded (registry storage
                    # dark, for instance) or rate-limiting this tenant,
                    # and told us when to come back.  Safe for every
                    # endpoint: a 503'd append persisted nothing
                    # (single-transaction batches), and a 429 is
                    # refused before any work happens.
                    delay = _retry_after_delay(
                        error.headers.get("Retry-After"),
                        self.retry_delay * (2 ** attempt))
                    error.close()
                    time.sleep(delay)
                    attempt += 1
                    continue
                raise _remote_error(error) from error
            except urllib.error.URLError as error:
                reason = error.reason
                # Connection refused proves the request was never
                # sent: always safe to retry.  RemoteDisconnected (a
                # ConnectionResetError subclass — the daemon accepted,
                # read, then closed without answering) is ambiguous:
                # the work may have happened, so only idempotent
                # requests retry; a disconnected embed must NOT be
                # replayed, or it could append twice to the ledger.
                disconnected = isinstance(
                    reason, http.client.RemoteDisconnected)
                retryable = (isinstance(reason, ConnectionRefusedError)
                             or (disconnected and idempotent))
                if retryable and attempt < self.retries:
                    time.sleep(min(self.retry_delay * (2 ** attempt),
                                   RETRY_DELAY_CAP))
                    attempt += 1
                    continue
                if disconnected and not idempotent:
                    raise RemoteServiceError(
                        "connection-closed",
                        f"the daemon at {self.base_url} disconnected "
                        f"mid-request; {method} {path} is not "
                        "idempotent, so it was not retried — verify "
                        "server-side state (e.g. /v1/records) before "
                        "resending") from error
                if (not retryable
                        and isinstance(reason, (BrokenPipeError,
                                                ConnectionResetError))):
                    # The connection died while we were still sending.
                    # Inherently ambiguous: the daemon may have died,
                    # or refused an oversize body 413-without-reading
                    # (our blocked write then cannot read the
                    # response) — so the code/status stay neutral.
                    size = len(body or b"")
                    hint = (f"; the {size}-byte body may exceed its "
                            "--max-body-bytes ceiling"
                            if size else "")
                    raise RemoteServiceError(
                        "connection-closed",
                        f"the daemon at {self.base_url} closed the "
                        f"connection mid-request (daemon restarted or "
                        f"died{hint})") from error
                raise ServiceUnavailableError(
                    f"no WmXML daemon answered at {self.base_url} "
                    f"({reason}) after {attempt + 1} attempt(s)"
                ) from error
            except TimeoutError as error:
                # A read timeout escapes urllib undressed; keep the
                # one-handler contract (everything is a WmXMLError).
                raise ServiceUnavailableError(
                    f"no response from {self.base_url} within "
                    f"{self.timeout}s") from error
            except (OSError, http.client.HTTPException) as error:
                # Errors after the request was sent escape urllib
                # unwrapped (urllib only wraps *send*-side errors in
                # URLError): a daemon killed before answering raises
                # RemoteDisconnected right here, so the idempotency
                # policy applies on this path too.
                if isinstance(error, http.client.RemoteDisconnected):
                    if idempotent and attempt < self.retries:
                        time.sleep(min(
                            self.retry_delay * (2 ** attempt),
                            RETRY_DELAY_CAP))
                        attempt += 1
                        continue
                    if not idempotent:
                        raise RemoteServiceError(
                            "connection-closed",
                            f"the daemon at {self.base_url} "
                            f"disconnected mid-request; {method} "
                            f"{path} is not idempotent, so it was not "
                            "retried — verify server-side state (e.g. "
                            "/v1/records) before resending") from error
                raise ServiceUnavailableError(
                    f"connection to {self.base_url} failed "
                    f"mid-response ({error})") from error

    @staticmethod
    def _decode(raw: bytes) -> dict:
        try:
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, ValueError) as error:
            # A proxy splash page / wrong service on the port: keep
            # the one-handler contract rather than leaking a raw
            # JSONDecodeError.
            raise ServiceError(
                f"response is not JSON — is something other than a "
                f"WmXML daemon answering? ({error})") from error
        if (not isinstance(data, dict)
                or data.get("format") != protocol.RESPONSE_FORMAT):
            tag = data.get("format") if isinstance(data, dict) else None
            raise ServiceError(
                f"response is not a {protocol.RESPONSE_FORMAT} envelope "
                f"(format={tag!r})")
        if not data.get("ok", False):
            error = data.get("error") or {}
            raise RemoteServiceError(
                error.get("code", "remote-error"),
                error.get("message", "unspecified remote error"),
                error.get("http_status"))
        return data


def _remote_error(error: urllib.error.HTTPError) -> WmXMLError:
    """An HTTP error status -> the daemon's envelope, best effort."""
    try:
        # read() itself can die (connection reset / truncated body
        # mid-envelope) — still an envelope-less remote error, never a
        # raw http.client exception.
        data = json.loads(error.read().decode("utf-8"))
    except (ValueError, UnicodeDecodeError, OSError,
            http.client.HTTPException):
        data = None
    if isinstance(data, dict):
        envelope = data.get("error")
        envelope = envelope if isinstance(envelope, dict) else {}
        return RemoteServiceError(
            envelope.get("code", "remote-error"),
            envelope.get("message", f"HTTP {error.code}"),
            error.code)
    # Not a WmXML envelope at all (proxy error page, other service).
    return RemoteServiceError("remote-error",
                              f"HTTP {error.code} from {error.url}",
                              error.code)


def _payload_of(envelope: dict) -> dict:
    """Strip the wire-framing keys so SDK callers never couple to the
    envelope (a future ``-v2`` framing change stays transparent)."""
    return {key: value for key, value in envelope.items()
            if key not in ("format", "ok")}


def _scheme_path(name: str) -> str:
    # Percent-encode so names with '#', '?', '/' or spaces survive the
    # URL (the server unquotes); otherwise urllib would silently treat
    # them as fragment/query/path syntax.
    return f"/v1/schemes/{urllib.parse.quote(name, safe='')}"


def _as_xml(document: DocumentLike) -> str:
    if isinstance(document, Document):
        return serialize(document)
    if isinstance(document, str):
        return document
    raise ServiceError(
        f"cannot send {type(document).__name__} as a document; "
        "pass a Document or XML text")


def _as_message(message: Union[str, Watermark]) -> str:
    if isinstance(message, Watermark):
        try:
            return message.to_message(strict=True)
        except WatermarkDecodeError as error:
            # Don't mislabel this as a detect-time decode failure: the
            # limitation is the wire format, not the watermark.
            raise ServiceError(
                "the wmxml-request-v1 protocol carries text messages "
                f"only, and this Watermark does not decode to text "
                f"({error}); use a local Pipeline for raw-bit "
                "watermarks") from error
    return message


def _as_optional_message(message) -> Optional[str]:
    return None if message is None else _as_message(message)


def _as_record_dict(record: Union[WatermarkRecord, dict]) -> dict:
    if isinstance(record, WatermarkRecord):
        return record.to_dict()
    return record


def _as_shape_dict(shape) -> Optional[dict]:
    if shape is None or isinstance(shape, dict):
        return shape
    return shape.to_dict()


def _embedding_result(payload: dict) -> EmbeddingResult:
    return EmbeddingResult(
        document=None,
        record=WatermarkRecord.from_dict(payload["record"]),
        stats=EmbeddingStats.from_dict(payload["stats"]),
        xml=payload["xml"],
    )
