"""``repro.service`` — WmXML as a network service.

The versioned HTTP/JSON boundary around :class:`repro.api.WmXMLSystem`:

* :mod:`repro.service.protocol` — the ``wmxml-request-v1`` /
  ``wmxml-response-v1`` wire formats and request-level errors;
* :mod:`repro.service.app` — :class:`WmXMLService` (pure dispatch) and
  :func:`make_server` (a ``ThreadingHTTPServer``), run via
  ``wmxml serve``;
* :mod:`repro.service.client` — :class:`WmXMLClient`, the remote twin
  of :class:`repro.api.Pipeline`.

Keys stay server-side; documents, records and verdicts cross the wire
as the same versioned JSON artefacts the library already persists.
"""

from repro.service.app import WmXMLService, make_server, running_server
from repro.service.client import (
    RemoteServiceError,
    ServiceUnavailableError,
    WmXMLClient,
)
from repro.service.protocol import (
    FINGERPRINT_HEADER,
    MAX_BODY_BYTES,
    MAX_SCHEMES,
    PROTOCOL_HEADER,
    REQUEST_FORMAT,
    RESPONSE_FORMAT,
    MalformedRequestError,
    MethodNotAllowedError,
    NotFoundError,
    OversizeBodyError,
    RegistryFullError,
    ServiceError,
    UnsupportedProtocolError,
)

__all__ = [
    "WmXMLService",
    "WmXMLClient",
    "make_server",
    "running_server",
    # protocol
    "REQUEST_FORMAT",
    "RESPONSE_FORMAT",
    "PROTOCOL_HEADER",
    "FINGERPRINT_HEADER",
    "MAX_BODY_BYTES",
    "MAX_SCHEMES",
    # errors
    "ServiceError",
    "MalformedRequestError",
    "UnsupportedProtocolError",
    "NotFoundError",
    "MethodNotAllowedError",
    "OversizeBodyError",
    "RegistryFullError",
    "RemoteServiceError",
    "ServiceUnavailableError",
]
