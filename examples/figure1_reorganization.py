#!/usr/bin/env python3
"""Figure 1 of the paper, executed: db1.xml -> db2.xml and back.

Reproduces the paper's running example end to end:

1. starts from the (regularised) db1.xml of Figure 1(a),
2. reorganises it into the db2.xml organisation of Figure 1(b) without
   losing information,
3. shows the §2.2 query rewriting — the same logical identity query
   compiled for both organisations returns the same answer,
4. embeds a watermark in db1, reorganises, and detects it in db2 via
   rewriting — while the Agrawal-Kiernan-style baseline loses every
   stored path.

Run:  python examples/figure1_reorganization.py
"""

from repro.api import SchemeBuilder, Watermark, WmXMLSystem, parse, pretty
from repro.baselines import AKWatermarker
from repro.datasets import bibliography
from repro.rewriting import LogicalQuery, reorganize, rewrite
from repro.xpath import select_strings

DB1 = (
    "<db>"
    '<book publisher="mkp">'
    "<title>Readings in Database Systems</title>"
    "<author>Stonebraker</author>"
    "<author>Hellerstein</author>"
    "<editor>Harrypotter</editor>"
    "<year>1998</year>"
    "</book>"
    '<book publisher="acm">'
    "<title>Database Design</title>"
    "<author>Berstein</author>"
    "<author>Newcomer</author>"
    "<editor>Gamer</editor>"
    "<year>1998</year>"
    "</book>"
    '<book publisher="mkp">'
    "<title>XML Query Processing</title>"
    "<author>Stonebraker</author>"
    "<editor>Harrypotter</editor>"
    "<year>2001</year>"
    "</book>"
    "</db>"
)

SECRET_KEY = "figure1-key"


def main() -> None:
    db1 = parse(DB1)
    source = bibliography.book_shape()
    target = bibliography.publisher_shape()

    # --- the reorganisation of Figure 1 --------------------------------------
    db2 = reorganize(db1, source, target).document
    print("=== db2.xml (reorganised, Figure 1b) ===")
    print(pretty(db2))

    # --- §2.2: the same logical query on both organisations -------------------
    query = LogicalQuery.create(
        "author", {"title": "Readings in Database Systems"})
    xpath_db1, xpath_db2 = rewrite(query, source, target)
    print("=== query rewriting (paper §2.2) ===")
    print(f"logical:   {query}")
    print(f"on db1:    {xpath_db1}")
    print(f"on db2:    {xpath_db2}")
    answer1 = sorted(set(select_strings(db1, xpath_db1)))
    answer2 = sorted(set(select_strings(db2, xpath_db2)))
    print(f"answers:   {answer1} == {answer2}: {answer1 == answer2}\n")

    # --- watermark in db1, detect in db2 --------------------------------------
    # price is absent in this small document; use a year+publisher scheme.
    from repro.datasets import vocab

    scheme = (SchemeBuilder(source)
              .carrier("year", "numeric", key="title")
              .carrier("publisher", "categorical", fd="editor",
                       params={"domain": list(vocab.PUBLISHERS)})
              .gamma(1)
              .build())
    system = WmXMLSystem(SECRET_KEY, alpha=0.05)
    pipeline = system.pipeline(system.register("figure1", scheme))
    result = pipeline.embed(db1, "WM")
    stolen = reorganize(result.document, source, target).document

    rewritten = pipeline.detect(stolen, result.record, shape=target,
                                expected="WM")
    unrewritten = pipeline.detect(stolen, result.record, shape=source,
                                  expected="WM")
    print("=== detection on the reorganised copy ===")
    print(f"WmXML with rewriting:    {rewritten}")
    print(f"WmXML without rewriting: {unrewritten}")

    ak = AKWatermarker(SECRET_KEY, source, scheme.carriers, gamma=1,
                       alpha=0.05)
    watermark = Watermark.from_message("WM")
    ak_doc, ak_record = ak.embed(db1, watermark)
    ak_stolen = reorganize(ak_doc, source, target).document
    ak_outcome = ak.detect(ak_stolen, ak_record, watermark)
    print(f"Agrawal-Kiernan paths:   {ak_outcome}")

    assert rewritten.detected
    assert not unrewritten.detected
    assert not ak_outcome.detected
    print("\nfigure-1 scenario OK: only query rewriting survives "
          "reorganisation")


if __name__ == "__main__":
    main()
