#!/usr/bin/env python3
"""One daemon, many owners: tenants, bearer tokens, quotas, rotation.

A single ``wmxml serve --tenants`` daemon can watermark for several
document owners at once.  Every tenant works under its own subkey
derived from a rotatable master-key map, authenticates with an
HMAC-signed bearer token, and is metered by token-bucket quotas — no
tenant can see or verify another's marks, even for the same scheme.
This example runs that whole story in one process:

1. stand up a daemon from a ``wmxml-tenants-v1`` config (two
   publishers plus a tightly-metered trial account),
2. mint tokens — narrow ones too — and watch 401/403 refusals,
3. embed as both publishers and show the namespaces never cross,
4. exhaust the trial tenant's quota and read the 429's honest
   ``Retry-After``,
5. rotate the master key and prove a pre-rotation record still
   verifies and traces.

Run:  python examples/multi_tenant_service.py
"""

import threading
import time

from repro.datasets import bibliography
from repro.registry import WatermarkRegistry
from repro.registry.backend import MemoryBackend
from repro.service import (RemoteServiceError, WmXMLClient,
                           WmXMLService, make_server)
from repro.tenants import TenantDirectory, TenantsConfig
from repro.xmlmodel import serialize

TENANTS = {
    "format": "wmxml-tenants-v1",
    "keys": {"1": "master-secret-gen-one"},
    "tenants": {
        "north-press": {},
        "south-books": {},
        "trial": {"quota": {"requests_per_minute": 60,
                            "request_burst": 2}},
    },
}


def serve(config: dict, registry: WatermarkRegistry):
    """A loopback daemon — outside of examples you would run
    ``wmxml serve --scheme books.json --tenants tenants.json``."""
    directory = TenantDirectory(TenantsConfig.from_dict(config),
                                registry=registry)
    directory.register_all("books", bibliography.default_scheme(2))
    server = make_server(WmXMLService(tenants=directory))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return (server, directory,
            f"http://127.0.0.1:{server.server_address[1]}")


def main() -> None:
    registry = WatermarkRegistry(MemoryBackend())
    server, directory, url = serve(TENANTS, registry)
    print(f"=== daemon listening on {url} "
          f"(tenants: {', '.join(directory.tenant_names())}) ===")

    # 1. Tokens.  Operators mint them offline (`wmxml token mint`);
    #    the daemon only ever *verifies*.  Health stays open, but a
    #    tokenless request to anything else is a 401 envelope.
    north = WmXMLClient(url, scheme="books",
                        token=directory.mint_token("north-press"))
    south = WmXMLClient(url, scheme="books",
                        token=directory.mint_token("south-books"))
    print(f"healthz (no token needed): "
          f"{WmXMLClient(url).healthz()['status']}")
    try:
        WmXMLClient(url, scheme="books").records()
    except RemoteServiceError as error:
        print(f"tokenless request refused: "
              f"{error.http_status} [{error.code}]")

    # A token can narrow a tenant's grant, never widen it: this one
    # may detect but not embed.
    detector = WmXMLClient(url, scheme="books",
                           token=directory.mint_token(
                               "north-press", scopes={"detect"}))

    # 2. Both publishers mark *the same* catalogue under one daemon.
    text = serialize(bibliography.generate_document(
        bibliography.BibliographyConfig(books=40, editors=6, seed=9)))
    marked = north.embed(text, "(c) north-press 2005")
    issued = north.issue(text, "mirror-site")
    print(f"north-press marked its catalogue and issued a copy to "
          f"'mirror-site' (key generation {issued.record.key_id})")

    try:
        detector.embed(text, "(c) north")
    except RemoteServiceError as error:
        print(f"detect-only token refused embed: "
              f"{error.http_status} [{error.code}]")

    # 3. Isolation.  south-books holds north's *leaked record* — and
    #    still cannot drive a detection with it, nor see the copy in
    #    its own listings.
    try:
        south.detect(issued.xml, issued.record)
    except RemoteServiceError as error:
        print(f"cross-tenant record refused: "
              f"{error.http_status} [{error.code}]")
    print(f"records visible to north-press: "
          f"{north.records()['total']}, to south-books: "
          f"{south.records()['total']}")  # 2 vs 0

    # 4. Quotas.  The trial tenant bursts twice, then hits the bucket;
    #    the client SDK sleeps the advertised Retry-After and retries,
    #    so the caller just sees a slower success.
    trial = WmXMLClient(url, token=directory.mint_token("trial"))
    trial.stats(), trial.stats()  # burns the burst
    start = time.monotonic()
    stats = trial.stats()         # 429 -> wait Retry-After -> 200
    print(f"trial tenant rate-limited then served after "
          f"{time.monotonic() - start:.1f}s "
          f"(errors so far: {stats['tenant']['errors']})")
    server.shutdown()
    server.server_close()

    # 5. Rotation.  A new master secret becomes generation 2; the same
    #    registry keeps serving.  New embeds use the new generation,
    #    while the pre-rotation record still verifies and the leaked
    #    copy still traces — each record names the generation that
    #    embedded it.
    rotated = {**TENANTS,
               "keys": {"1": "master-secret-gen-one",
                        "2": "master-secret-gen-two"},
               "active_key_id": 2}
    server, directory, url = serve(rotated, registry)
    north = WmXMLClient(url, scheme="books",
                        token=directory.mint_token("north-press"))
    fresh = north.embed(text, "(c) north, new generation")
    verdict = north.detect(marked.xml, marked.record,
                           expected="(c) north-press 2005")
    print(f"after rotation: new embeds under generation "
          f"{fresh.record.key_id}, generation-{marked.record.key_id} "
          f"record still verifies ({verdict.detected})")
    assert verdict.detected and fresh.record.key_id == 2

    trace = north.trace(issued.xml)
    print(f"leak traced across generations: prime suspect "
          f"{trace.prime_suspect!r}")
    assert trace.prime_suspect == "mirror-site"
    server.shutdown()
    server.server_close()
    print("OK")


if __name__ == "__main__":
    main()
