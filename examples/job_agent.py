#!/usr/bin/env python3
"""The paper's §1 motivating scenario: a job agent vs a listing thief.

"An example is a job agent's web site, who would like to prevent his job
advertisements from being stolen and posted on other web sites."

The thief does what real scrapers do:

1. steals the feed,
2. keeps only the lucrative subset (reduction),
3. reorganises it per employer page (re-organisation),
4. rounds salaries and unifies duplicated company facts to "clean" it
   (alteration + redundancy removal).

The agent then proves ownership from the stolen copy alone, using the
stored query set Q, the secret key, and query rewriting.

Run:  python examples/job_agent.py
"""

from repro.api import (
    CompositeAttack,
    RedundancyUnificationAttack,
    ReductionAttack,
    ReorganizationAttack,
    SiblingShuffleAttack,
    UsabilityBaseline,
    WmXMLSystem,
)
from repro.datasets import jobs

SECRET_KEY = "job-agent-master-key"
MESSAGE = "(c) AcmeJobs feed"


def main() -> None:
    # The agent publishes a 200-posting feed, watermarked.
    config = jobs.JobsConfig(jobs=200, companies=12, cities=10, seed=3)
    feed = jobs.generate_document(config)
    scheme = jobs.default_scheme(gamma=3)

    system = WmXMLSystem(SECRET_KEY, alpha=1e-3)
    system.register("job-feed", scheme)
    pipeline = system.pipeline("job-feed")
    published = pipeline.embed(feed, MESSAGE)
    print(f"published feed: {feed.count_elements()} elements, "
          f"{published.stats.selected_groups} marked groups "
          f"({published.stats.nodes_modified} perturbed values)")

    # --- the thief strikes ---------------------------------------------------
    thief = CompositeAttack([
        ReductionAttack(keep_fraction=0.6, seed=13),
        SiblingShuffleAttack(seed=13),
        ReorganizationAttack(jobs.listing_shape(), jobs.by_company_shape()),
        RedundancyUnificationAttack(jobs.semantic_fds()[0],
                                    strategy="majority", seed=13),
    ])
    stolen = thief.apply(published.document)
    print(f"\nthief's pipeline: {' -> '.join(stolen.params['sequence'])}")
    print(f"stolen copy: "
          f"{len(list(stolen.document.iter_elements('job')))} of 200 "
          "postings, reorganised by company")

    # --- the agent proves ownership -------------------------------------------
    # The agent inspects the thief's site and models its organisation —
    # that model is the schema mapping of paper Figure 2; detection
    # rewrites every stored query against it.
    outcome = pipeline.detect(stolen.document, published.record,
                              shape=jobs.by_company_shape(),
                              expected=MESSAGE)
    print(f"\ndetection on the stolen copy: {outcome}")

    # The stolen copy is still useful to the thief (that is the point of
    # stealing); usability of the *surviving* subset is high.
    baseline = UsabilityBaseline.snapshot(feed, jobs.listing_shape(),
                                          scheme.templates)
    report = baseline.evaluate(stolen.document, jobs.by_company_shape())
    print(f"thief's copy usability vs full feed: {report}")
    print("(the lost strict share is exactly the discarded 40% of "
          "postings — what the thief kept still answers correctly)")

    # A competitor without the key cannot claim the same feed.
    impostor = WmXMLSystem("competitor-guess", alpha=1e-3)
    claim = impostor.detect(scheme, stolen.document, published.record,
                            shape=jobs.by_company_shape(),
                            expected=MESSAGE)
    print(f"\nimpostor with wrong key: {claim}")

    assert outcome.detected and not claim.detected
    print("\njob-agent scenario OK: ownership proven from the stolen copy")


if __name__ == "__main__":
    main()
