#!/usr/bin/env python3
"""Fingerprinting: trace a leaked copy back to its recipient.

The paper motivates watermarking with proving ownership *or tracing any
reproduction* of the data.  Tracing needs per-recipient marks: this
example issues fingerprinted copies of one catalogue to three partners,
leaks one copy (after the thief attacks it), and identifies the leaker —
then shows what a two-partner collusion can and cannot achieve.

Run:  python examples/traitor_tracing.py
"""

from repro.api import CollusionAttack, CompositeAttack, Fingerprinter, \
    ReductionAttack, SiblingShuffleAttack, ValueAlterationAttack
from repro.datasets import bibliography

MASTER_KEY = "publisher-master-key"


def main() -> None:
    config = bibliography.BibliographyConfig(books=150, editors=12, seed=8)
    catalogue = bibliography.generate_document(config)
    scheme = bibliography.default_scheme(gamma=2)

    tracer = Fingerprinter(scheme, MASTER_KEY, alpha=1e-3)
    partners = ("north-media", "acme-press", "globex-books")
    copies = {name: tracer.issue(catalogue, name) for name in partners}
    print(f"issued {len(copies)} fingerprinted copies of "
          f"{config.books} records to: {', '.join(partners)}")

    # --- a single partner leaks (and the pirate roughs the copy up) ----------
    pirate = CompositeAttack([
        ValueAlterationAttack(0.10, seed=21),
        ReductionAttack(0.8, seed=21),
        SiblingShuffleAttack(seed=21),
    ])
    leaked = pirate.apply(copies["acme-press"].document).document
    trace = tracer.trace(leaked)
    print("\nleak #1 (single partner, attacked copy)")
    print(f"  {trace}")
    assert trace.prime_suspect == "acme-press"

    # --- two partners collude -------------------------------------------------
    # (random picking per value — with two colluders "majority" would
    # degenerate to always keeping the first copy)
    coalition = CollusionAttack(
        [copies["north-media"].document, copies["globex-books"].document],
        strategy="random", seed=22)
    merged = coalition.apply(copies["north-media"].document)
    print(f"\nleak #2 (collusion of two, {merged.modifications} values "
          "merged)")
    trace = tracer.trace(merged.document)
    print(f"  {trace}")
    caught = set(trace.accused)
    assert caught <= {"north-media", "globex-books"}
    assert caught, "at least one colluder must remain identifiable"
    assert "acme-press" not in caught

    # --- a clean-room competitor is never accused ------------------------------
    unrelated = bibliography.generate_document(
        bibliography.BibliographyConfig(books=150, editors=12, seed=1234))
    trace = tracer.trace(unrelated)
    print("\ncontrol (unrelated catalogue)")
    print(f"  {trace}")
    assert not trace.accused

    print("\ntraitor-tracing scenario OK")


if __name__ == "__main__":
    main()
