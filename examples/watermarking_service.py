#!/usr/bin/env python3
"""The watermarking *service*: WmXML behind HTTP, keys server-side.

The paper presents WmXML as a system sitting beside an XML database,
watermarking and verifying documents on demand.  This example runs that
deployment shape end to end, in one process for convenience — the
daemon here is byte-for-byte the one ``wmxml serve`` runs:

1. start a daemon around a ``WmXMLSystem`` (the secret key never
   leaves it),
2. register a deployment over ``PUT /v1/schemes/books``,
3. embed through ``WmXMLClient`` — the remote twin of ``Pipeline``,
4. verify an attacked copy over the wire,
5. read the daemon's request stats.

Run:  python examples/watermarking_service.py
"""

import threading

from repro import api
from repro.datasets import bibliography
from repro.service import WmXMLClient, WmXMLService, make_server

SECRET_KEY = "the-owners-secret"
MESSAGE = "(c) 2005 WmXML demo"


def main() -> None:
    # 1. The daemon: one WmXMLSystem behind loopback HTTP.  Outside of
    #    examples you would run `wmxml serve --scheme books.json
    #    --key ... --port 8420 --processes 4` instead.
    system = api.WmXMLSystem(SECRET_KEY)
    server = make_server(WmXMLService(system))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    print(f"=== daemon listening on {url} ===")

    client = WmXMLClient(url, scheme="books")
    print(f"healthz: {client.healthz()['status']}")

    # 2. Deployments are wmxml-scheme-v1 artefacts; register one over
    #    the wire and note its pipeline fingerprint (also the ETag of
    #    GET /v1/schemes/books — a cache-validation handle).
    fingerprint = client.put_scheme("books", bibliography.default_scheme(2))
    print(f"registered scheme 'books' (fingerprint {fingerprint})")

    # 3. Embed remotely.  The client ships raw XML and gets back the
    #    marked markup plus the query-set record Q — the same
    #    EmbeddingResult a local Pipeline returns.
    document = bibliography.generate_document(
        bibliography.BibliographyConfig(books=40, editors=6, seed=1))
    result = client.embed(document, MESSAGE)
    print(f"embedded {result.record.nbits}-bit watermark "
          f"({result.stats.nodes_modified} nodes perturbed)")

    # 4. An adversary alters 20% of the values; detection over the
    #    wire still proves ownership.
    stolen = api.ValueAlterationAttack(rate=0.2, seed=7).apply(
        result.to_document()).document
    outcome = client.detect(stolen, result.record, expected=MESSAGE)
    print(f"verdict on attacked copy: {outcome}")
    assert outcome.detected, "watermark must survive the alteration"

    # Local and remote pipelines are interchangeable: the same detect
    # run through an in-process Pipeline votes identically.
    local = system.pipeline("books").detect(
        stolen, result.record, expected=MESSAGE)
    assert outcome.to_dict() == local.to_dict()
    print("remote verdict is bit-identical to the local pipeline's")

    # 5. Operations: per-endpoint latency straight from the daemon.
    stats = client.stats()
    print(f"daemon served {stats['requests']} requests, "
          f"{stats['errors']} errors")
    server.shutdown()
    server.server_close()
    print("OK")


if __name__ == "__main__":
    main()
