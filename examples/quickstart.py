#!/usr/bin/env python3
"""Quickstart: watermark the paper's own Figure 1 bibliography.

Walks the complete WmXML lifecycle through the :mod:`repro.api` facade
on a small generated bibliography:

1. generate data and inspect its semantics (key + FD),
2. define the watermarking scheme and save it as a ``scheme.json``
   deployment artefact,
3. embed a watermark through the system facade,
4. verify it — on the marked document and on an attacked copy,
5. confirm the usability guarantee of paper §2.1.

Run:  python examples/quickstart.py
"""

import json

from repro import api
from repro.datasets import bibliography

SECRET_KEY = "the-owners-secret"
MESSAGE = "(c) 2005 WmXML demo"


def main() -> None:
    # 1. A bibliography like the paper's db1.xml, 40 books.
    config = bibliography.BibliographyConfig(books=40, editors=6, seed=1)
    document = bibliography.generate_document(config)
    print("=== sample of the data ===")
    print(api.pretty(document.root.child_elements("book")[0]))

    # The semantics WmXML builds identifiers from:
    key = bibliography.semantic_key()
    fd = bibliography.semantic_fd()
    print(f"key holds: {key.holds(document)}   ({key.render()})")
    duplicated = fd.duplicated_groups(document)
    print(f"FD holds:  {fd.holds(document)}   ({fd.render()})")
    print(f"FD redundancy: {len(duplicated)} editor groups with duplicates\n")

    # 2. The scheme: numeric year/price carriers identified by the title
    #    key; the categorical publisher carrier identified (and folded)
    #    by the editor FD; usability templates with tolerances.  The
    #    built scheme is a declarative artefact — it round-trips through
    #    JSON, so a deployment is config, not code.
    scheme = bibliography.default_scheme(gamma=2)
    artefact = scheme.to_json()
    scheme = api.WatermarkingScheme.from_json(artefact)  # config round-trip
    print("=== watermarking scheme ===")
    print(scheme.describe())
    print(f"(scheme.json artefact: {len(artefact)} bytes, "
          f"format {json.loads(artefact)['format']})\n")

    # 3. Embed, through the system facade that owns the secret key.
    system = api.WmXMLSystem(SECRET_KEY, alpha=1e-3)
    system.register("bibliography", scheme)
    pipeline = system.pipeline("bibliography")
    result = pipeline.embed(document, MESSAGE)
    stats = result.stats
    print("=== embedding ===")
    print(f"watermark bits:    {result.record.nbits}")
    print(f"capacity groups:   {stats.capacity_groups}")
    print(f"selected (1/{scheme.gamma}):    {stats.selected_groups}")
    print(f"nodes perturbed:   {stats.nodes_modified}")
    print(f"query set Q size:  {len(result.record)}\n")

    # 4. Detect — on the marked copy, and after an alteration attack.
    clean = pipeline.detect(result.document, result.record,
                            expected=MESSAGE)
    print("=== detection ===")
    print(f"marked document:   {clean}")

    attacked = api.ValueAlterationAttack(rate=0.2, seed=9).apply(
        result.document).document
    after_attack = pipeline.detect(attacked, result.record,
                                   expected=MESSAGE)
    print(f"after 20% noise:   {after_attack}")

    stranger = api.WmXMLSystem("not-the-key", alpha=1e-3)
    wrong = stranger.detect(scheme, result.document, result.record,
                            expected=MESSAGE)
    print(f"wrong key:         {wrong}\n")

    # 5. Usability: embedding must not break the template answers.
    baseline = api.UsabilityBaseline.snapshot(document, scheme.shape,
                                              scheme.templates)
    print("=== usability (paper §2.1) ===")
    print(f"marked document:   {baseline.evaluate(result.document)}")
    print(f"attacked document: {baseline.evaluate(attacked)}")

    assert clean.detected and after_attack.detected and not wrong.detected
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
