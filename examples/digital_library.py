#!/usr/bin/env python3
"""The paper's second scenario: a digital library with image payloads.

"A commercial digital library also would need to safeguard its copyright
over its collection of knowledge information."

Demonstrates the plug-in architecture of Figure 4 — different data types
are handled by different watermarking algorithms (WA_i):

* preview images (base64 binary) -> keyed LSB embedding,
* page counts (numeric)          -> digit parity,
* shelf labels (text, FD-folded) -> case parity.

Also shows *blind* detection: recovering watermark bits by majority
voting without knowing the expected message in advance.

Run:  python examples/digital_library.py
"""

import base64

from repro.api import NodeDeletionAttack, ValueAlterationAttack, WmXMLSystem
from repro.datasets import library
from repro.xpath import select_strings

SECRET_KEY = "library-vault-key"
MESSAGE = "NLB(c)05"  # 64 bits — small enough to fully recover blind


def main() -> None:
    config = library.LibraryConfig(items=300, categories=8, seed=5,
                                   image_bytes=160)
    catalogue = library.generate_document(config)

    system = WmXMLSystem(SECRET_KEY, alpha=1e-6)
    system.register("library", library.default_scheme(gamma=1))  # dense
    pipeline = system.pipeline("library")
    result = pipeline.embed(catalogue, MESSAGE)
    print(f"catalogue: {config.items} items, "
          f"{result.stats.nodes_modified} values perturbed "
          f"across {result.stats.embedded_groups} groups")
    print(f"per-field marks: {result.stats.per_field}")

    # The images still decode, same size, LSB-level differences only.
    originals = select_strings(catalogue, "/library/item/image")
    marked = select_strings(result.document, "/library/item/image")
    byte_flips = sum(
        sum(1 for x, y in zip(base64.b64decode(a), base64.b64decode(b))
            if x != y)
        for a, b in zip(originals, marked))
    total_bytes = sum(len(base64.b64decode(a)) for a in originals)
    print(f"image perturbation: {byte_flips}/{total_bytes} bytes "
          f"({100 * byte_flips / total_bytes:.2f}%), all LSB-only\n")

    # Blind detection: no expected message supplied.
    blind = pipeline.detect(result.document, result.record)
    print("=== blind detection ===")
    print(f"recovered bit positions: "
          f"{sum(b is not None for b in blind.recovered_bits)}"
          f"/{len(blind.recovered_bits)}")
    print(f"recovered message: {blind.recovered_message!r} "
          f"(status: {blind.message_status})")

    # Robustness: a vandal deletes 30% of the catalogue's metadata and
    # scrambles 10% of the remaining values.
    vandal = ValueAlterationAttack(0.10, seed=7).apply(
        NodeDeletionAttack(0.30, tag="pages", seed=7).apply(
            result.document).document).document
    verified = pipeline.detect(vandal, result.record, expected=MESSAGE)
    print("\n=== after vandalism (30% pages deleted, 10% noise) ===")
    print(verified)

    assert blind.recovered_message == MESSAGE
    assert verified.detected
    print("\ndigital-library scenario OK: "
          "message recovered blind, mark survives vandalism")


if __name__ == "__main__":
    main()
